"""Tests for Hamiltonian-cycle verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.verify import (
    CycleViolation,
    cycle_from_successors,
    is_hamiltonian_cycle,
    is_hamiltonian_path,
    verify_cycle,
)

from tests.conftest import complete, path_graph, ring


class TestVerifyCycle:
    def test_valid_ring(self):
        verify_cycle(ring(6), [0, 1, 2, 3, 4, 5])

    def test_any_rotation_valid(self):
        verify_cycle(ring(6), [3, 4, 5, 0, 1, 2])

    def test_reverse_valid(self):
        verify_cycle(ring(6), [0, 5, 4, 3, 2, 1])

    def test_wrong_length(self):
        with pytest.raises(CycleViolation, match="visits"):
            verify_cycle(ring(6), [0, 1, 2])

    def test_repeat_node(self):
        with pytest.raises(CycleViolation, match="twice"):
            verify_cycle(ring(4), [0, 1, 2, 1])

    def test_non_edge(self):
        with pytest.raises(CycleViolation, match="not an edge"):
            verify_cycle(ring(6), [0, 2, 1, 3, 4, 5])

    def test_missing_closing_edge(self):
        g = path_graph(4)
        with pytest.raises(CycleViolation):
            verify_cycle(g, [0, 1, 2, 3])

    def test_too_small_graph(self):
        with pytest.raises(CycleViolation, match="< 3"):
            verify_cycle(Graph(2, [(0, 1)]), [0, 1])

    def test_out_of_range_node(self):
        with pytest.raises(CycleViolation):
            verify_cycle(ring(4), [0, 1, 2, 9])


class TestHamiltonianPath:
    def test_path(self):
        assert is_hamiltonian_path(path_graph(5), [0, 1, 2, 3, 4])

    def test_not_path(self):
        assert not is_hamiltonian_path(path_graph(5), [0, 2, 1, 3, 4])

    def test_wrong_length(self):
        assert not is_hamiltonian_path(path_graph(5), [0, 1, 2])


class TestSuccessorMaps:
    def test_roundtrip(self):
        succ = {0: 1, 1: 2, 2: 3, 3: 0}
        assert cycle_from_successors(succ) == [0, 1, 2, 3]

    def test_two_cycles_detected(self):
        succ = {0: 1, 1: 0, 2: 3, 3: 2}
        with pytest.raises(CycleViolation, match="multiple cycles"):
            cycle_from_successors(succ)

    def test_missing_entry(self):
        with pytest.raises(CycleViolation):
            cycle_from_successors({0: 1, 1: 2})

    def test_bad_start(self):
        with pytest.raises(CycleViolation):
            cycle_from_successors({1: 2, 2: 1}, start=0)


@given(st.permutations(list(range(8))))
@settings(max_examples=40, deadline=None)
def test_every_permutation_cycles_on_complete_graph(perm):
    """On K_n every permutation order is a valid Hamiltonian cycle."""
    g = complete(8)
    assert is_hamiltonian_cycle(g, list(perm))


@given(st.permutations(list(range(7))))
@settings(max_examples=40, deadline=None)
def test_successor_roundtrip_is_rotation_invariant(perm):
    order = list(perm)
    succ = {order[i]: order[(i + 1) % 7] for i in range(7)}
    rebuilt = cycle_from_successors(succ, start=order[0])
    assert rebuilt == order
