"""Tests for the ``repro-hc`` command-line front end."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.harness import validate_metrics_payload


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRunCommand:
    def test_dhc2_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dhc2", "--nodes", "64",
            "--delta", "0.5", "--c", "6", "--seed", "3", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "dhc2"
        assert payload["n"] == 64
        assert isinstance(payload["rounds"], int)
        assert code in (0, 1)
        assert code == (0 if payload["success"] else 1)

    def test_legacy_flags_imply_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "--algorithm", "dra", "--nodes", "48", "--seed", "1",
            "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "dra"

    def test_human_output_mentions_cycle(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--seed", "1")
        assert "graph: gnp(n=48" in out
        if code == 0:
            assert "cycle:" in out

    def test_levy_baseline_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "levy", "--nodes", "96",
            "--delta", "0.25", "--c", "2", "--seed", "1", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "levy"
        assert payload["engine"] == "fast"

    def test_local_baseline_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "local", "--nodes", "96",
            "--seed", "1", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "local"
        assert payload["bits"] > 0

    def test_kmachine_conversion_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--seed", "2", "--k-machines", "4", "--json")
        payload = json.loads(out)
        assert "kmachine" in payload
        assert payload["kmachine"]["k"] == 4.0

    def test_kmachine_rejected_for_centralized(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "upcast", "--nodes", "48",
            "--k-machines", "4")
        assert code == 2
        assert "fully-distributed" in err

    def test_native_kmachine_engine_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "64",
            "--delta", "1.0", "--c", "8", "--seed", "2",
            "--engine", "kmachine", "--k-machines", "4", "--json")
        payload = json.loads(out)
        assert payload["engine"] == "kmachine"
        assert payload["detail"]["k_machines"] == 4
        assert payload["detail"]["kmachine_rounds"] >= payload["rounds"] > 0
        assert payload["kmachine"]["k"] == 4.0

    def test_native_kmachine_defaults_and_link_words(self, capsys):
        base = ("run", "--algorithm", "dra", "--nodes", "64",
                "--delta", "1.0", "--c", "8", "--seed", "2",
                "--engine", "kmachine", "--json")
        _, out_default, _ = run_cli(capsys, *base)
        _, out_narrow, _ = run_cli(capsys, *base, "--link-words", "1")
        default = json.loads(out_default)
        narrow = json.loads(out_narrow)
        assert default["detail"]["k_machines"] == 8  # DEFAULT_K_MACHINES
        assert narrow["detail"]["link_words"] == 1
        assert (narrow["detail"]["kmachine_rounds"]
                > default["detail"]["kmachine_rounds"])
        # The cost model never perturbs the protocol.
        assert narrow["rounds"] == default["rounds"]

    def test_native_kmachine_dhc2_keeps_color_k(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dhc2", "--nodes", "96",
            "--delta", "0.5", "--c", "6", "--seed", "2",
            "--engine", "kmachine", "--k", "4", "--k-machines", "2",
            "--json")
        payload = json.loads(out)
        assert payload["detail"]["k"] == 4            # colour count
        assert payload["detail"]["k_machines"] == 2   # machine count

    def test_native_kmachine_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--engine", "kmachine",
            "--sizes", "48,64", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--k-machines", "4", "--json")
        payload = json.loads(out)
        assert code == 0
        assert payload["engine"] == "kmachine"
        assert all(row[2] >= 0 for row in payload["rows"])

    def test_converted_report_honours_link_words(self, capsys):
        base = ("run", "--algorithm", "dra", "--nodes", "48", "--seed", "2",
                "--k-machines", "4", "--json")
        _, out_wide, _ = run_cli(capsys, *base)
        _, out_narrow, _ = run_cli(capsys, *base, "--link-words", "1")
        wide = json.loads(out_wide)["kmachine"]
        narrow = json.loads(out_narrow)["kmachine"]
        assert narrow["kmachine_rounds"] > wide["kmachine_rounds"]

    def test_gnm_model(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "gnm", "--seed", "2", "--json")
        payload = json.loads(out)
        assert payload["m"] > 0

    def test_regular_model(self, capsys):
        # delta=1, c=2 keeps the matched degree inside the pairing
        # model's samplable range.
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "regular", "--delta", "1.0", "--c", "2",
            "--seed", "2", "--json")
        payload = json.loads(out)
        assert payload["m"] > 0

    def test_regular_model_infeasible_degree_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "regular", "--delta", "0.5", "--c", "6")
        assert code == 2
        assert "pairing model" in err


class TestEngineSelection:
    def test_explicit_congest_engine(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--engine", "congest",
            "--nodes", "48", "--c", "8", "--delta", "1.0", "--seed", "1",
            "--json")
        payload = json.loads(out)
        assert payload["engine"] == "congest"
        assert payload["messages"] > 0

    def test_explicit_fast_engine(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--engine", "fast",
            "--nodes", "48", "--c", "8", "--delta", "1.0", "--seed", "1",
            "--json")
        payload = json.loads(out)
        assert payload["engine"] == "fast"

    def test_auto_engine_picks_fast_for_plain_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--c", "8", "--delta", "1.0", "--seed", "1", "--json")
        assert json.loads(out)["engine"] == "fast"

    def test_auto_engine_honours_audit_memory(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--c", "8", "--delta", "1.0", "--seed", "1", "--audit-memory",
            "--json")
        assert json.loads(out)["engine"] == "congest"

    def test_engines_identical_cycles(self, capsys):
        """The CLI surfaces the engine parity the registry declares."""
        args = ("--algorithm", "dra", "--nodes", "48", "--c", "8",
                "--delta", "1.0", "--seed", "3", "--json")
        _, out_fast, _ = run_cli(capsys, "run", "--engine", "fast", *args)
        _, out_congest, _ = run_cli(capsys, "run", "--engine", "congest", *args)
        fast, congest = json.loads(out_fast), json.loads(out_congest)
        assert fast["rounds"] == congest["rounds"]
        assert fast["steps"] == congest["steps"]

    def test_legacy_alias_conflicting_engine_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--engine", "congest",
            "--nodes", "48")
        assert code == 2
        assert "implies --engine fast" in err

    def test_sequential_engine(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "posa", "--nodes", "64",
            "--c", "8", "--delta", "1.0", "--seed", "1", "--json")
        payload = json.loads(out)
        assert payload["engine"] == "sequential"
        assert payload["rounds"] == 0

    def test_unsupported_capability_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "levy", "--audit-memory",
            "--nodes", "48")
        assert code == 2
        assert "audit_memory" in err


class TestEnginesCommand:
    def test_engines_table(self, capsys):
        code, out, _ = run_cli(capsys, "engines")
        assert code == 0
        assert "dhc2" in out and "congest" in out and "fast" in out

    def test_engines_json_lists_capabilities(self, capsys):
        code, out, _ = run_cli(capsys, "engines", "--json")
        specs = {(s["algorithm"], s["engine"]): s for s in json.loads(out)}
        assert specs[("dra", "congest")]["kmachine_convertible"] is True
        assert specs[("dra", "fast")]["kmachine_convertible"] is False
        assert "rounds" in specs[("dra", "fast")]["parity"]

    def test_engines_listing_includes_related_work_entries(self, capsys):
        code, out, _ = run_cli(capsys, "engines", "--json")
        specs = {(s["algorithm"], s["engine"]): s for s in json.loads(out)}
        assert specs[("turau", "congest")]["kmachine_convertible"] is True
        assert "fault_plan" in specs[("turau", "congest")]["supported_kwargs"]
        assert specs[("turau", "fast")]["parity"] == ["cycle", "steps"]
        assert specs[("cre", "fast")]["parity"] == ["cycle", "steps"]
        assert specs[("cre", "sequential")]["kmachine_convertible"] is False
        # And the human-readable table names them too.
        code, out, _ = run_cli(capsys, "engines")
        assert "turau" in out and "cre" in out

    def test_engines_listing_shows_batch_and_jit_capabilities(self, capsys):
        code, out, _ = run_cli(capsys, "engines", "--json")
        specs = {(s["algorithm"], s["engine"]): s for s in json.loads(out)}
        for algorithm in ("dra", "cre", "dhc2", "turau"):
            assert specs[(algorithm, "fast-batch")]["batched"] is True
            assert specs[(algorithm, "fast")]["batched"] is False
        # jit marks batch entries that dispatch through the compiled
        # kernels; Turau's batch path is pure decision replay.
        assert specs[("dra", "fast-batch")]["jit"] is True
        assert specs[("dhc2", "fast-batch")]["jit"] is True
        assert specs[("turau", "fast-batch")]["jit"] is False
        assert specs[("dra", "fast")]["jit"] is False
        # threads marks jit batch entries with prange kernel variants
        # (REPRO_JIT_THREADS); it implies jit, so Turau stays out.
        assert specs[("dra", "fast-batch")]["threads"] is True
        assert specs[("cre", "fast-batch")]["threads"] is True
        assert specs[("dhc2", "fast-batch")]["threads"] is True
        assert specs[("turau", "fast-batch")]["threads"] is False
        assert specs[("dra", "fast")]["threads"] is False
        code, out, _ = run_cli(capsys, "engines")
        header = out.splitlines()[1]
        assert "batched" in header and "jit" in header
        assert "threads" in header

    def test_engines_listing_shows_async_capability(self, capsys):
        code, out, _ = run_cli(capsys, "engines", "--json")
        specs = {(s["algorithm"], s["engine"]): s for s in json.loads(out)}
        for algorithm in ("dra", "dhc1", "dhc2", "turau"):
            assert specs[(algorithm, "async")]["async_capable"] is True
            assert specs[(algorithm, "congest")]["async_capable"] is False
            assert "network" in specs[(algorithm, "async")]["supported_kwargs"]
        code, out, _ = run_cli(capsys, "engines")
        assert "async" in out.splitlines()[1]


class TestMergeCommand:
    def _sweep_into(self, capsys, tmp_path, name):
        shard_dir = tmp_path / name
        code, _, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--engine", "fast",
            "--sizes", "24,32", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--seed", "3", "--store-backend", "sharded",
            "--store", str(shard_dir), "--json")
        assert code == 0
        return shard_dir

    def test_merge_nonexistent_source_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "merge", str(tmp_path / "missing"),
            "--out", str(tmp_path / "out.jsonl"))
        assert code == 2
        assert "does not exist" in err
        assert not (tmp_path / "out.jsonl").exists()

    def test_merge_empty_shard_directory_is_a_clean_error(
            self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, _, err = run_cli(
            capsys, "merge", str(empty), "--out", str(tmp_path / "out.jsonl"))
        assert code == 2
        assert "no shard files" in err
        assert not (tmp_path / "out.jsonl").exists()

    def test_merge_zero_records_refuses_empty_output(self, capsys, tmp_path):
        # A JSONL file that exists but holds no records: the merge must
        # not silently produce an empty store.
        empty_file = tmp_path / "empty.jsonl"
        empty_file.write_text("")
        code, _, err = run_cli(
            capsys, "merge", str(empty_file),
            "--out", str(tmp_path / "out.jsonl"))
        assert code == 2
        assert "no trial records" in err
        assert not (tmp_path / "out.jsonl").exists()

    def test_merge_happy_path_still_works(self, capsys, tmp_path):
        shard_dir = self._sweep_into(capsys, tmp_path, "shards")
        out = tmp_path / "merged.jsonl"
        code, text, _ = run_cli(
            capsys, "merge", str(shard_dir), "--out", str(out),
            "--trials", "2", "--points", "2", "--json")
        assert code == 0
        assert json.loads(text)["records"] == 4
        assert out.exists()


class TestSweepCommand:
    def test_sweep_fits_exponent(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "48,96,192", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["rows"]) == 3
        assert payload["fitted_exponent"] is not None

    def test_sweep_table_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "48,96", "--trials", "1", "--c", "8", "--delta", "1.0")
        assert code == 0
        assert "mean rounds" in out
        assert "fitted rounds ~ n^" in out

    def test_sweep_needs_two_sizes(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "--sizes", "64")
        assert code == 2
        assert "two sizes" in err

    def test_sweep_rejects_nonpositive_batch_size(self, capsys):
        code, _, err = run_cli(
            capsys, "sweep", "--sizes", "48,64", "--batch-size", "0")
        assert code == 2
        assert "--batch-size" in err

    def test_sweep_batch_size_falls_back_without_batch_runner(self, capsys):
        code, out, err = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--engine", "fast",
            "--sizes", "48,64", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--batch-size", "4", "--json")
        assert code == 0
        assert "no batch runner" in err
        assert json.loads(out)["rows"]

    def test_sweep_batched_records_match_unbatched(self, capsys, tmp_path):
        base = ("sweep", "--algorithm", "dra", "--engine", "fast-batch",
                "--sizes", "32,48", "--trials", "5", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--json")
        code, _, _ = run_cli(capsys, *base, "--store",
                             str(tmp_path / "solo.jsonl"))
        assert code == 0
        code, _, _ = run_cli(capsys, *base, "--batch-size", "3",
                             "--store", str(tmp_path / "batched.jsonl"))
        assert code == 0

        def canonical(path):
            records = []
            for line in path.open():
                record = json.loads(line)
                record.pop("elapsed_s", None)
                records.append(record)
            return records

        assert canonical(tmp_path / "solo.jsonl") \
            == canonical(tmp_path / "batched.jsonl")

    def test_sweep_auto_selects_fast_batch_for_large_queues(
            self, capsys, monkeypatch):
        # engine=auto + many same-point trials -> the batch kernel,
        # no flag needed (threshold lowered so the test stays fast).
        monkeypatch.setattr("repro.cli.AUTO_BATCH_MIN_TRIALS", 4)
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra",
            "--sizes", "24,32", "--trials", "4", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json")
        assert code == 0
        assert json.loads(out)["engine"] == "fast-batch"
        # Below the threshold auto stays on per-trial fast.
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra",
            "--sizes", "24,32", "--trials", "3", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json")
        assert code == 0
        assert json.loads(out)["engine"] == "fast"
        # An explicit --batch-size 1 opts out of auto-selection.
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra",
            "--sizes", "24,32", "--trials", "4", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--batch-size", "1", "--json")
        assert code == 0
        assert json.loads(out)["engine"] == "fast"
        # Algorithms with no fast-batch entry are left on auto's pick.
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "posa",
            "--sizes", "24,32", "--trials", "4", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json")
        assert code == 0
        assert json.loads(out)["engine"] == "sequential"

    def test_sweep_auto_batched_records_match_fast(self, capsys,
                                                   monkeypatch, tmp_path):
        # Auto-batching must be invisible in the store: same seeds,
        # same records as an explicit per-trial fast sweep.
        base = ("sweep", "--algorithm", "dra", "--sizes", "24,32",
                "--trials", "5", "--c", "8", "--delta", "1.0",
                "--seed", "5", "--json")
        code, _, _ = run_cli(capsys, *base, "--engine", "fast",
                             "--store", str(tmp_path / "fast.jsonl"))
        assert code == 0
        monkeypatch.setattr("repro.cli.AUTO_BATCH_MIN_TRIALS", 5)
        code, out, _ = run_cli(capsys, *base, "--store",
                               str(tmp_path / "auto.jsonl"))
        assert code == 0
        assert json.loads(out)["engine"] == "fast-batch"

        def canonical(path):
            records = []
            for line in path.open():
                record = json.loads(line)
                record.pop("elapsed_s", None)
                records.append(record)
            return records

        assert canonical(tmp_path / "fast.jsonl") \
            == canonical(tmp_path / "auto.jsonl")

    def test_sweep_sequential_algorithm_skips_power_law(self, capsys):
        # Sequential engines report rounds=0; the sweep must still
        # print its table instead of dying inside fit_power_law.
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "posa", "--sizes", "24,32",
            "--trials", "2", "--c", "8", "--delta", "1.0", "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["rows"]) == 2
        assert payload["fitted_exponent"] is None

    def test_kmachines_with_unsupported_kwarg_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra", "--k", "4",
            "--k-machines", "2", "--nodes", "48")
        assert code == 2
        assert "does not support: k" in err

    def test_kmachines_with_legacy_alias_suggests_base_name(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--k-machines", "2",
            "--nodes", "48")
        assert code == 2
        assert "--algorithm dra" in err

    def test_sweep_jobs_matches_serial_store(self, capsys, tmp_path):
        """A --jobs sweep writes the same records a serial sweep does."""
        args = ("sweep", "--algorithm", "dra", "--engine", "fast",
                "--sizes", "48,64", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--json")
        serial_store = tmp_path / "serial.jsonl"
        parallel_store = tmp_path / "parallel.jsonl"
        code_s, out_s, _ = run_cli(capsys, *args, "--store", str(serial_store))
        code_p, out_p, _ = run_cli(capsys, *args, "--jobs", "2",
                                   "--store", str(parallel_store))
        assert code_s == code_p == 0
        assert json.loads(out_s)["rows"] == json.loads(out_p)["rows"]

        def canonical(path):
            records = [json.loads(line) for line in
                       path.read_text().splitlines() if line]
            for r in records:
                r.pop("elapsed_s", None)
            return [json.dumps(r, sort_keys=True) for r in records]

        assert canonical(serial_store) == canonical(parallel_store)

    def test_sweep_work_stealing_matches_serial_canonically(
            self, capsys, tmp_path):
        """--schedule work-stealing changes write order, not records."""
        args = ("sweep", "--algorithm", "dra", "--engine", "fast",
                "--sizes", "48,64", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--json")
        serial_store = tmp_path / "serial.jsonl"
        stolen_store = tmp_path / "stolen.jsonl"
        code_s, out_s, _ = run_cli(capsys, *args, "--store", str(serial_store))
        code_w, out_w, _ = run_cli(capsys, *args, "--jobs", "2",
                                   "--schedule", "work-stealing",
                                   "--store", str(stolen_store))
        assert code_s == code_w == 0
        # The aggregate table is computed from the runner's schedule-
        # ordered return value, so it is identical verbatim.
        assert json.loads(out_s)["rows"] == json.loads(out_w)["rows"]

        def canonical(path):
            records = [json.loads(line) for line in
                       path.read_text().splitlines() if line]
            for r in records:
                r.pop("elapsed_s", None)
            return sorted(json.dumps(r, sort_keys=True) for r in records)

        assert canonical(serial_store) == canonical(stolen_store)

    def test_sweep_related_algorithms_through_full_harness(
            self, capsys, tmp_path):
        """turau and cre run the whole orchestration stack unchanged.

        Work-stealing schedule, two-shard sharded store, `repro merge`
        with the joint-exhaustiveness check — and the merged JSONL is
        canonically identical to a serial single-host sweep.
        """
        for algorithm, extra in (("turau", ()), ("cre", ())):
            base = ("sweep", "--algorithm", algorithm, "--sizes", "24,32",
                    "--trials", "3", "--delta", "0.5", "--c", "6",
                    "--seed", "7", "--json", *extra)
            serial_store = tmp_path / f"{algorithm}-serial.jsonl"
            shard_dir = tmp_path / f"{algorithm}-shards"
            merged = tmp_path / f"{algorithm}-merged.jsonl"
            code, _, _ = run_cli(capsys, *base, "--store", str(serial_store))
            assert code == 0
            for shard in ("0/2", "1/2"):
                code, _, _ = run_cli(
                    capsys, *base, "--jobs", "2", "--schedule",
                    "work-stealing", "--shard", shard,
                    "--store-backend", "sharded", "--store", str(shard_dir))
                assert code == 0
            code, out, _ = run_cli(
                capsys, "merge", str(shard_dir), "--out", str(merged),
                "--trials", "3", "--points", "2", "--json")
            assert code == 0
            assert json.loads(out)["records"] == 6

            def canonical(path):
                records = [json.loads(line) for line in
                           path.read_text().splitlines() if line]
                for r in records:
                    r.pop("elapsed_s", None)
                return [json.dumps(r, sort_keys=True) for r in records]

            assert canonical(serial_store) == canonical(merged), algorithm

    def test_sweep_store_resume_skips_completed(self, capsys, tmp_path):
        store = tmp_path / "resume.jsonl"
        args = ("sweep", "--algorithm", "dra", "--engine", "fast",
                "--sizes", "48,64", "--trials", "2", "--c", "8",
                "--delta", "1.0", "--store", str(store), "--json")
        run_cli(capsys, *args)
        first = store.read_text()
        run_cli(capsys, *args)  # rerun: everything loaded, nothing appended
        assert store.read_text() == first

    def test_sweep_batched_store_resume_mid_batch(self, capsys, tmp_path):
        # Kill a batched sweep after one point, resume with a different
        # batch size: the final store must be byte-identical (modulo
        # timings) to an uninterrupted serial sweep — the batch task
        # regenerates graphs from (point, seeds), so grouping is
        # invisible to the records.
        base = ("sweep", "--algorithm", "dra", "--engine", "fast-batch",
                "--sizes", "24,32,48", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "11", "--json")
        full = tmp_path / "full.jsonl"
        code, _, _ = run_cli(capsys, *base, "--store", str(full))
        assert code == 0
        partial = tmp_path / "partial.jsonl"
        code, _, _ = run_cli(capsys, *base, "--sizes", "24,32",
                             "--batch-size", "4", "--store", str(partial))
        assert code == 0
        # Resume over the full grid with a different grouping.
        code, _, _ = run_cli(capsys, *base, "--batch-size", "3",
                             "--store", str(partial))
        assert code == 0

        def canonical(path):
            records = [json.loads(line) for line in
                       path.read_text().splitlines() if line]
            for r in records:
                r.pop("elapsed_s", None)
            return [json.dumps(r, sort_keys=True) for r in records]

        assert canonical(full) == canonical(partial)


class TestSweepJobsThreadedKernelRule:
    """--jobs vs the threaded batch kernel (documented composition rule)."""

    def _force_threaded(self, monkeypatch, threads=2):
        from repro.engines import _jit

        monkeypatch.setattr(_jit, "THREADED", True)
        monkeypatch.setattr(_jit, "THREADS", threads)

    def test_explicit_jobs_and_batch_size_conflict(self, capsys, monkeypatch):
        self._force_threaded(monkeypatch)
        code, _, err = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--engine", "fast-batch",
            "--sizes", "24,32", "--trials", "4", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json",
            "--jobs", "2", "--batch-size", "2")
        assert code == 2
        assert "REPRO_JIT_THREADS" in err and "--jobs" in err

    def test_auto_batching_demotes_jobs(self, capsys, monkeypatch):
        self._force_threaded(monkeypatch)
        monkeypatch.setattr("repro.cli.AUTO_BATCH_MIN_TRIALS", 4)
        code, out, err = run_cli(
            capsys, "sweep", "--algorithm", "dra",
            "--sizes", "24,32", "--trials", "4", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json", "--jobs", "2")
        assert code == 0
        assert "demoting --jobs 2 to 1" in err
        payload = json.loads(out)
        assert payload["engine"] == "fast-batch"
        assert payload["jobs"] == 1

    def test_engine_without_thread_capability_is_untouched(
            self, capsys, monkeypatch):
        # turau's batch path never enters the compiled kernels, so the
        # rule must not fire even with threads active globally.
        self._force_threaded(monkeypatch)
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "turau", "--engine",
            "fast-batch", "--sizes", "24,32", "--trials", "3",
            "--c", "6", "--delta", "0.5", "--seed", "7", "--json",
            "--jobs", "2", "--batch-size", "3")
        assert code == 0
        assert json.loads(out)["jobs"] == 2

    def test_serial_kernel_composes_jobs_with_batching(
            self, capsys, tmp_path):
        # Without kernel threads (the default here) batches are split
        # across workers and records stay identical to serial.
        base = ("sweep", "--algorithm", "dra", "--engine", "fast-batch",
                "--sizes", "24,32", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--json")
        serial = tmp_path / "serial.jsonl"
        fanout = tmp_path / "fanout.jsonl"
        code_s, _, _ = run_cli(capsys, *base, "--batch-size", "2",
                               "--store", str(serial))
        code_p, _, _ = run_cli(capsys, *base, "--batch-size", "2",
                               "--jobs", "2", "--store", str(fanout))
        assert code_s == code_p == 0

        def canonical(path):
            records = [json.loads(line) for line in
                       path.read_text().splitlines() if line]
            for r in records:
                r.pop("elapsed_s", None)
            return [json.dumps(r, sort_keys=True) for r in records]

        assert canonical(serial) == canonical(fanout)

    def test_drawpool_fallback_through_full_sweep(self, capsys,
                                                  monkeypatch, tmp_path):
        # DrawPool's per-node-Generator fallback (pooled stream check
        # failed) must be invisible end-to-end: a full fast-batch sweep
        # writes the same records either way.
        from repro.engines import batchwalk

        base = ("sweep", "--algorithm", "dra", "--engine", "fast-batch",
                "--sizes", "24,32", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--batch-size", "4",
                "--json")
        exact = tmp_path / "exact.jsonl"
        fallback = tmp_path / "fallback.jsonl"
        code, _, _ = run_cli(capsys, *base, "--store", str(exact))
        assert code == 0
        with monkeypatch.context() as m:
            m.setattr(batchwalk, "_EXACT", False)
            code, _, _ = run_cli(capsys, *base, "--store", str(fallback))
        assert code == 0

        def canonical(path):
            records = [json.loads(line) for line in
                       path.read_text().splitlines() if line]
            for r in records:
                r.pop("elapsed_s", None)
            return [json.dumps(r, sort_keys=True) for r in records]

        assert canonical(exact) == canonical(fallback)


class TestNetworkFlag:
    """--network JSON|@file and the async engine on the CLI."""

    def test_async_engine_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--engine", "async",
            "--nodes", "32", "--c", "8", "--delta", "1.0", "--seed", "3",
            "--json")
        payload = json.loads(out)
        assert payload["engine"] == "async"
        assert payload["detail"]["async"]["limited"] == 0

    def test_async_engine_matches_congest(self, capsys):
        args = ("--algorithm", "dra", "--nodes", "32", "--c", "8",
                "--delta", "1.0", "--seed", "3", "--json")
        _, out_sync, _ = run_cli(capsys, "run", "--engine", "congest", *args)
        _, out_async, _ = run_cli(capsys, "run", "--engine", "async", *args)
        sync, against = json.loads(out_sync), json.loads(out_async)
        for field in ("success", "rounds", "messages", "bits"):
            assert against[field] == sync[field], field

    def test_network_json_document(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "32",
            "--c", "8", "--delta", "1.0", "--seed", "2", "--json",
            "--network", '{"fault_plan": {"drop_probability": 1.0}}')
        payload = json.loads(out)
        assert code == 1  # blackout: clean failure
        assert payload["engine"] == "congest"  # auto never picks async
        assert payload["detail"]["faults"]["dropped"] > 0

    def test_network_file_document(self, capsys, tmp_path):
        doc = tmp_path / "net.json"
        doc.write_text('{"mode": "async", '
                       '"latency": {"kind": "uniform", "low": 0.5, '
                       '"high": 1.5}, "seed": 7}')
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--engine", "async",
            "--nodes", "32", "--c", "8", "--delta", "1.0", "--seed", "2",
            "--json", "--network", f"@{doc}")
        payload = json.loads(out)
        assert payload["engine"] == "async"
        assert payload["detail"]["async"]["reordered"] > 0

    def test_async_engine_defaults_mode(self, capsys):
        # With --engine async a document without "mode" is taken async.
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--engine", "async",
            "--nodes", "24", "--c", "8", "--delta", "1.0", "--seed", "1",
            "--json", "--network", '{"latency": {"kind": "fixed", '
            '"value": 2.0}}')
        assert json.loads(out)["engine"] == "async"

    def test_invalid_network_json_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "24",
            "--network", "{not json")
        assert code == 2
        assert "not valid JSON" in err

    def test_unknown_network_field_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "24",
            "--network", '{"topology": "ring"}')
        assert code == 2
        assert "unknown NetworkModel" in err

    def test_missing_network_file_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "24",
            "--network", f"@{tmp_path}/missing.json")
        assert code == 2
        assert "cannot read --network file" in err

    def test_network_does_not_compose_with_kmachine_conversion(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "24",
            "--k-machines", "4", "--network", "{}")
        assert code == 2
        assert "does not compose" in err

    def test_sweep_with_network_pins_congest(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--sizes", "24,32",
            "--trials", "2", "--c", "8", "--delta", "1.0", "--seed", "5",
            "--json",
            "--network", '{"fault_plan": {"drop_probability": 0.01}}')
        assert code == 0
        payload = json.loads(out)
        assert payload["engine"] == "congest"
        assert len(payload["rows"]) == 2

    def test_sweep_async_engine_with_metrics(self, capsys, tmp_path):
        path = tmp_path / "kpis.json"
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra", "--engine", "async",
            "--sizes", "24,32", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--seed", "5", "--json",
            "--network", '{"latency": {"kind": "uniform", "low": 0.5, '
            '"high": 1.5}}', "--metrics", str(path))
        assert code == 0
        assert json.loads(out)["engine"] == "async"
        payload = validate_metrics_payload(json.loads(path.read_text()))
        text = json.dumps(payload)
        assert "async_stretch" in text
        assert "async_termination_rate" in text


class TestMainModule:
    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bounds", "--nodes", "64",
             "--json"],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["p"] > 0


class TestGraphCommand:
    def test_graph_properties_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "--nodes", "128", "--delta", "0.5",
            "--c", "4", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["n"] == 128
        assert payload["above_threshold"] is True
        assert payload["connected"] is True
        assert payload["degree"]["mean"] > 0

    def test_graph_exact_diameter(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "--nodes", "64", "--delta", "0.5",
            "--c", "4", "--exact-diameter", "--json")
        payload = json.loads(out)
        assert payload["diameter"] >= 1

    def test_graph_table_output(self, capsys):
        code, out, _ = run_cli(capsys, "graph", "--nodes", "64")
        assert "property" in out
        assert "degree_mean" in out


class TestBoundsCommand:
    def test_bounds_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "--nodes", "1024", "--delta", "0.5",
            "--c", "6", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["partitions (n^(1-delta))"] == 32
        assert payload["dra_step_budget (Thm 2)"] > 0
        assert 0 <= payload["partition_size_failure (Lem 4/7)"] <= 1

    def test_bounds_table(self, capsys):
        code, out, _ = run_cli(capsys, "bounds", "--nodes", "256")
        assert "Thm 10" in out


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        code, out, _ = run_cli(capsys)
        assert code == 2
        assert "Subcommand" in out or "usage" in out.lower()

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestSweepMetrics:
    def test_metrics_report_and_store_sidecar(self, capsys, tmp_path):
        store = tmp_path / "sweep.jsonl"
        code, out, err = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "32,48", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--seed", "7", "--store", str(store),
            "--metrics", "--json")
        assert code == 0
        assert json.loads(out)["rows"]
        assert "== sweep metrics (schema v1) ==" in err
        sidecar = tmp_path / "sweep.metrics.json"
        assert f"metrics -> {sidecar}" in err
        payload = validate_metrics_payload(json.loads(sidecar.read_text()))
        assert payload["kpis"]["trials"] == 4
        # "dra-fast" is an alias the CLI normalises to (dra, fast).
        assert payload["context"]["algorithm"] == "dra"
        assert payload["context"]["engine"] == "fast"
        assert payload["context"]["schedule"] == "serial"

    def test_metrics_explicit_path_without_store(self, capsys, tmp_path):
        path = tmp_path / "kpis.json"
        code, _, err = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "32,48", "--trials", "1", "--c", "8",
            "--delta", "1.0", "--seed", "7", "--metrics", str(path))
        assert code == 0
        assert path.exists()
        payload = validate_metrics_payload(json.loads(path.read_text()))
        assert payload["kpis"]["trials"] == 2

    def test_metrics_without_store_or_path_reports_only(self, capsys):
        code, _, err = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "32,48", "--trials", "1", "--c", "8",
            "--delta", "1.0", "--seed", "7", "--metrics")
        assert code == 0
        assert "== sweep metrics (schema v1) ==" in err
        assert "metrics ->" not in err

    def test_metrics_parallel_kpis_match_serial(self, capsys, tmp_path):
        paths = {}
        for label, extra in (("serial", []),
                             ("parallel", ["--jobs", "2"])):
            paths[label] = tmp_path / f"{label}.json"
            code, _, _ = run_cli(
                capsys, "sweep", "--algorithm", "dra-fast",
                "--sizes", "32,48", "--trials", "4", "--c", "8",
                "--delta", "1.0", "--seed", "5",
                "--metrics", str(paths[label]), *extra)
            assert code == 0
        serial = json.loads(paths["serial"].read_text())
        parallel = json.loads(paths["parallel"].read_text())
        assert serial["kpis"] == parallel["kpis"]

    def test_metrics_rejects_bad_interval(self, capsys):
        code, _, err = run_cli(
            capsys, "sweep", "--sizes", "32,48", "--metrics",
            "--metrics-interval", "0")
        assert code == 2
        assert "--metrics-interval" in err
