"""Tests for the ``repro-hc`` command-line front end."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRunCommand:
    def test_dhc2_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dhc2", "--nodes", "64",
            "--delta", "0.5", "--c", "6", "--seed", "3", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "dhc2"
        assert payload["n"] == 64
        assert isinstance(payload["rounds"], int)
        assert code in (0, 1)
        assert code == (0 if payload["success"] else 1)

    def test_legacy_flags_imply_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "--algorithm", "dra", "--nodes", "48", "--seed", "1",
            "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "dra"

    def test_human_output_mentions_cycle(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--seed", "1")
        assert "graph: gnp(n=48" in out
        if code == 0:
            assert "cycle:" in out

    def test_levy_baseline_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "levy", "--nodes", "96",
            "--delta", "0.25", "--c", "2", "--seed", "1", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "levy"
        assert payload["engine"] == "fast"

    def test_local_baseline_runs(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "local", "--nodes", "96",
            "--seed", "1", "--json")
        payload = json.loads(out)
        assert payload["algorithm"] == "local"
        assert payload["bits"] > 0

    def test_kmachine_conversion_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra", "--nodes", "48",
            "--seed", "2", "--k-machines", "4", "--json")
        payload = json.loads(out)
        assert "kmachine" in payload
        assert payload["kmachine"]["k"] == 4.0

    def test_kmachine_rejected_for_centralized(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "upcast", "--nodes", "48",
            "--k-machines", "4")
        assert code == 2
        assert "fully-distributed" in err

    def test_gnm_model(self, capsys):
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "gnm", "--seed", "2", "--json")
        payload = json.loads(out)
        assert payload["m"] > 0

    def test_regular_model(self, capsys):
        # delta=1, c=2 keeps the matched degree inside the pairing
        # model's samplable range.
        code, out, _ = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "regular", "--delta", "1.0", "--c", "2",
            "--seed", "2", "--json")
        payload = json.loads(out)
        assert payload["m"] > 0

    def test_regular_model_infeasible_degree_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "--algorithm", "dra-fast", "--nodes", "64",
            "--model", "regular", "--delta", "0.5", "--c", "6")
        assert code == 2
        assert "pairing model" in err


class TestSweepCommand:
    def test_sweep_fits_exponent(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "48,96,192", "--trials", "2", "--c", "8",
            "--delta", "1.0", "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload["rows"]) == 3
        assert payload["fitted_exponent"] is not None

    def test_sweep_table_output(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "--algorithm", "dra-fast",
            "--sizes", "48,96", "--trials", "1", "--c", "8", "--delta", "1.0")
        assert code == 0
        assert "mean rounds" in out
        assert "fitted rounds ~ n^" in out

    def test_sweep_needs_two_sizes(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "--sizes", "64")
        assert code == 2
        assert "two sizes" in err


class TestGraphCommand:
    def test_graph_properties_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "--nodes", "128", "--delta", "0.5",
            "--c", "4", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["n"] == 128
        assert payload["above_threshold"] is True
        assert payload["connected"] is True
        assert payload["degree"]["mean"] > 0

    def test_graph_exact_diameter(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "--nodes", "64", "--delta", "0.5",
            "--c", "4", "--exact-diameter", "--json")
        payload = json.loads(out)
        assert payload["diameter"] >= 1

    def test_graph_table_output(self, capsys):
        code, out, _ = run_cli(capsys, "graph", "--nodes", "64")
        assert "property" in out
        assert "degree_mean" in out


class TestBoundsCommand:
    def test_bounds_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "--nodes", "1024", "--delta", "0.5",
            "--c", "6", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["partitions (n^(1-delta))"] == 32
        assert payload["dra_step_budget (Thm 2)"] > 0
        assert 0 <= payload["partition_size_failure (Lem 4/7)"] <= 1

    def test_bounds_table(self, capsys):
        code, out, _ = run_cli(capsys, "bounds", "--nodes", "256")
        assert "Thm 10" in out


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        code, out, _ = run_cli(capsys)
        assert code == 2
        assert "Subcommand" in out or "usage" in out.lower()

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
