"""Unit tests for the advisory bench-regression comparator."""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

from check_bench import compare, main, numeric_leaves  # noqa: E402


BASE = {
    "experiment": "x",
    "sizes": [1024, 4096],
    "shared": {"4": {"native_trials_per_sec": 100.0,
                     "native_kmachine_rounds": 5000}},
}


class TestCompare:
    def test_in_band_run_is_clean(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["shared"]["4"]["native_trials_per_sec"] = 80.0  # noisy but fine
        problems, compared, _skipped = compare(fresh, BASE, 0.5, 0.25)
        assert problems == []
        assert compared == 2

    def test_rate_regression_detected(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["shared"]["4"]["native_trials_per_sec"] = 10.0
        problems, _, _ = compare(fresh, BASE, 0.5, 0.25)
        assert len(problems) == 1 and "rate regression" in problems[0]

    def test_count_drift_detected_but_rates_may_improve(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["shared"]["4"]["native_trials_per_sec"] = 900.0  # faster: fine
        fresh["shared"]["4"]["native_kmachine_rounds"] = 9000  # drift: not
        problems, _, _ = compare(fresh, BASE, 0.5, 0.25)
        assert len(problems) == 1 and "count drift" in problems[0]

    def test_config_keys_ignored(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["sizes"] = [256]  # a smoke run's reduced grid
        problems, _, _ = compare(fresh, BASE, 0.5, 0.25)
        assert problems == []

    def test_unmatched_paths_skipped(self):
        fresh = {"shared": {"4": {"native_trials_per_sec": 100.0}}}
        problems, compared, skipped = compare(fresh, BASE, 0.5, 0.25)
        assert problems == [] and compared == 1 and skipped == 1

    def test_numeric_leaves_flattening(self):
        leaves = numeric_leaves({"a": {"b": [1, {"c": 2.5}]}, "ok": True})
        assert leaves == {"a.b.0": 1.0, "a.b.1.c": 2.5}  # bools excluded

    def test_all_numeric_lists_collapse_to_median(self):
        # Repeated samples of one measurement -> one noise-damped leaf.
        leaves = numeric_leaves({"rate_per_sec": [100.0, 90.0, 800.0]})
        assert leaves == {"rate_per_sec": 100.0}
        # Singletons and mixed lists keep element-wise paths.
        assert numeric_leaves({"x": [7]}) == {"x.0": 7.0}
        assert numeric_leaves({"x": [7, None, 9]}) == {"x.0": 7.0, "x.2": 9.0}

    def test_cost_leaves_regress_upward(self):
        base = {"setup": {"setup_fraction": 0.4, "setup_seconds": 2.0}}
        # Cheaper setup is an improvement, never a problem ...
        fresh = {"setup": {"setup_fraction": 0.1, "setup_seconds": 0.5}}
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert problems == [] and compared == 2
        # ... while a costlier one trips the inverse-rate band.
        slow = {"setup": {"setup_fraction": 0.9, "setup_seconds": 2.1}}
        problems, _, _ = compare(slow, base, 0.5, 0.25)
        assert len(problems) == 1
        assert "cost regression" in problems[0]
        assert "setup_fraction" in problems[0]

    def test_percentile_tails_gate_as_costs(self):
        base = {"metrics_lane": {"overhead_fraction": 0.005,
                                 "kpis": {"latency_p50_s": 0.01,
                                          "latency_p90_s": 0.02,
                                          "latency_p99_s": 0.03}}}
        # A p99 blow-up with a healthy median is caught ...
        fresh = json.loads(json.dumps(base))
        fresh["metrics_lane"]["kpis"]["latency_p99_s"] = 0.30
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert compared == 4
        assert len(problems) == 1
        assert "latency_p99_s" in problems[0]
        assert "cost regression" in problems[0]
        # ... and so is collector overhead creeping past its band.
        heavy = json.loads(json.dumps(base))
        heavy["metrics_lane"]["overhead_fraction"] = 0.02
        problems, _, _ = compare(heavy, base, 0.5, 0.25)
        assert len(problems) == 1 and "overhead_fraction" in problems[0]
        # Tails falling is an improvement, never a problem.
        quick = json.loads(json.dumps(base))
        quick["metrics_lane"]["kpis"]["latency_p90_s"] = 0.001
        problems, _, _ = compare(quick, base, 0.5, 0.25)
        assert problems == []

    def test_rate_markers_beat_percentile_markers(self):
        # trials_per_sec_p90 is rate-like: lower, not higher, is worse.
        base = {"kpis": {"trials_per_sec_p90": 100.0}}
        fresh = {"kpis": {"trials_per_sec_p90": 200.0}}
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert problems == [] and compared == 1
        slow = {"kpis": {"trials_per_sec_p90": 10.0}}
        problems, _, _ = compare(slow, base, 0.5, 0.25)
        assert len(problems) == 1 and "rate regression" in problems[0]

    def test_jit_threads_is_config_not_signal(self):
        base = dict(BASE, jit_threads=0)
        fresh = json.loads(json.dumps(BASE))
        fresh["jit_threads"] = 0
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert problems == [] and compared == 2  # jit_threads not a leaf

    def test_mismatched_threads_skip_timings_not_counts(self):
        base = {"jit_threads": 0,
                "batch_trials_per_sec": 100.0,
                "setup_fraction": 0.4,
                "rounds": 5000}
        fresh = {"jit_threads": 2,
                 "batch_trials_per_sec": 10.0,   # would trip if compared
                 "setup_fraction": 0.9,          # would trip if compared
                 "rounds": 9000}                 # must still trip
        problems, compared, skipped = compare(fresh, base, 0.5, 0.25)
        assert len(problems) == 1 and "count drift" in problems[0]
        assert compared == 1
        assert skipped == 2  # the two timing leaves sat out

    def test_thread_scaling_columns_compare_across_mismatch(self):
        # thread_scaling columns are keyed by thread count, so they
        # stay comparable even when the payloads' active jit_threads
        # differ.
        base = {"jit_threads": 0,
                "thread_scaling": {"2": {"batch_trials_per_sec": 100.0}}}
        fresh = {"jit_threads": 2,
                 "thread_scaling": {"2": {"batch_trials_per_sec": 10.0}}}
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert compared == 1
        assert len(problems) == 1 and "rate regression" in problems[0]

    def test_median_damps_single_outlier_sample(self):
        base = {"shared": {"t_per_sec": [100.0, 101.0, 99.0]}}
        # One garbage repeat (CI hiccup) must not trip the check ...
        fresh = {"shared": {"t_per_sec": [100.0, 2.0, 99.0]}}
        problems, compared, _ = compare(fresh, base, 0.5, 0.25)
        assert problems == [] and compared == 1
        # ... but a consistently slow fresh run still does.
        slow = {"shared": {"t_per_sec": [10.0, 11.0, 9.0]}}
        problems, _, _ = compare(slow, base, 0.5, 0.25)
        assert len(problems) == 1 and "rate regression" in problems[0]


class TestMain:
    def test_exit_codes(self, tmp_path):
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(BASE))
        fresh = json.loads(json.dumps(BASE))
        fresh_path = tmp_path / "fresh.json"
        fresh_path.write_text(json.dumps(fresh))
        assert main([str(fresh_path), str(base_path)]) == 0
        fresh["shared"]["4"]["native_trials_per_sec"] = 1.0
        fresh_path.write_text(json.dumps(fresh))
        assert main([str(fresh_path), str(base_path)]) == 2
        assert main([str(tmp_path / "missing.json"), str(base_path)]) == 1
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert main([str(empty), str(base_path)]) == 1
