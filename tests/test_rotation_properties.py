"""Property-based tests on the rotation and merge arithmetic.

These validate the pure renumbering mathematics that both engines rely
on, independent of any network machinery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import DIR_PRED, DIR_SUCC


def rotate(path, j):
    """Fig. 2's rotation: reverse the segment after position j (1-based)."""
    h = len(path)
    assert 1 <= j < h
    return path[:j] + path[j:][::-1]


def renumber(i, h, j):
    """The paper's index map: i -> h + j + 1 - i for j < i <= h."""
    return h + j + 1 - i if j < i <= h else i


class TestRotationArithmetic:
    @given(st.integers(4, 60), st.data())
    @settings(max_examples=100, deadline=None)
    def test_renumber_matches_segment_reversal(self, n, data):
        """The index formula and the list reversal agree everywhere."""
        path = list(range(100, 100 + n))
        j = data.draw(st.integers(1, n - 1))
        rotated = rotate(path, j)
        for new_pos, node in enumerate(rotated, start=1):
            old_pos = path.index(node) + 1
            assert renumber(old_pos, n, j) == new_pos

    @given(st.integers(4, 40), st.data())
    @settings(max_examples=60, deadline=None)
    def test_renumber_is_involution_on_segment(self, n, data):
        j = data.draw(st.integers(1, n - 1))
        for i in range(j + 1, n + 1):
            assert renumber(renumber(i, n, j), n, j) == i

    @given(st.integers(4, 40), st.data())
    @settings(max_examples=60, deadline=None)
    def test_rotation_preserves_node_set(self, n, data):
        path = list(range(n))
        j = data.draw(st.integers(1, n - 1))
        assert sorted(rotate(path, j)) == path

    @given(st.integers(4, 40), st.data())
    @settings(max_examples=60, deadline=None)
    def test_new_head_is_old_j_plus_one(self, n, data):
        path = list(range(n))
        j = data.draw(st.integers(1, n - 1))
        assert rotate(path, j)[-1] == path[j]  # old v_{j+1} (0-based index j)


def splice(a_cycle, b_cycle, v_pos, w_pos, direction):
    """DHC2's merge splice (mirrors fast/_merge_pair and MergeMachine)."""
    s_a, s_b = len(a_cycle), len(b_cycle)
    if direction == DIR_SUCC:
        b_seq = [b_cycle[(w_pos - t) % s_b] for t in range(s_b)]
    else:
        b_seq = [b_cycle[(w_pos + t) % s_b] for t in range(s_b)]
    u_pos = (v_pos + 1) % s_a
    a_seq = a_cycle[u_pos:] + a_cycle[:u_pos]
    return b_seq + a_seq


class TestMergeArithmetic:
    @given(
        sa=st.integers(3, 30),
        sb=st.integers(3, 30),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_splice_is_a_cyclic_ordering_of_the_union(self, sa, sb, data):
        a_cycle = [("a", i) for i in range(sa)]
        b_cycle = [("b", i) for i in range(sb)]
        v_pos = data.draw(st.integers(0, sa - 1))
        w_pos = data.draw(st.integers(0, sb - 1))
        direction = data.draw(st.sampled_from([DIR_SUCC, DIR_PRED]))
        merged = splice(a_cycle, b_cycle, v_pos, w_pos, direction)
        assert sorted(merged) == sorted(a_cycle + b_cycle)
        assert len(merged) == sa + sb

    @given(sa=st.integers(3, 20), sb=st.integers(3, 20), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_splice_edges_come_from_cycles_or_bridge(self, sa, sb, data):
        """Every edge of the merged order is a cycle edge of A or B, or
        one of the two bridge edges — exactly the paper's construction."""
        a_cycle = [("a", i) for i in range(sa)]
        b_cycle = [("b", i) for i in range(sb)]
        v_pos = data.draw(st.integers(0, sa - 1))
        w_pos = data.draw(st.integers(0, sb - 1))
        direction = data.draw(st.sampled_from([DIR_SUCC, DIR_PRED]))
        merged = splice(a_cycle, b_cycle, v_pos, w_pos, direction)

        def cyc_edges(cycle):
            return {frozenset((cycle[i], cycle[(i + 1) % len(cycle)]))
                    for i in range(len(cycle))}

        allowed = cyc_edges(a_cycle) | cyc_edges(b_cycle)
        v = a_cycle[v_pos]
        u = a_cycle[(v_pos + 1) % sa]
        w = b_cycle[w_pos]
        wp = b_cycle[(w_pos + (1 if direction == DIR_SUCC else -1)) % sb]
        allowed |= {frozenset((v, w)), frozenset((u, wp))}
        merged_edges = cyc_edges(merged)
        assert merged_edges <= allowed
        # The two removed cycle edges must NOT appear.
        assert frozenset((v, u)) not in merged_edges
        assert frozenset((w, wp)) not in merged_edges

    @given(sa=st.integers(3, 20), sb=st.integers(3, 20), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_splice_starts_at_w_and_ends_at_v(self, sa, sb, data):
        a_cycle = list(range(sa))
        b_cycle = list(range(100, 100 + sb))
        v_pos = data.draw(st.integers(0, sa - 1))
        w_pos = data.draw(st.integers(0, sb - 1))
        direction = data.draw(st.sampled_from([DIR_SUCC, DIR_PRED]))
        merged = splice(a_cycle, b_cycle, v_pos, w_pos, direction)
        assert merged[0] == b_cycle[w_pos]
        assert merged[-1] == a_cycle[v_pos]
