"""The optional numba backend gate (repro.engines._jit).

The module decides at import time; these tests reload it under forced
environments so both decisions are covered wherever the suite runs —
with or without numba installed.  ``REPRO_JIT_THREADS`` parsing and
the threaded-dispatch gating ride the same harness.
"""

import importlib
import os
import sys
import warnings

import pytest

import repro.engines._jit as _jit

_SENTINEL = object()


def _probe(jit_env, numba_module, threads_env=None):
    """Reload ``_jit`` under a forced env/numba combination.

    Returns a snapshot of the reloaded module's decision (reload hands
    back the *same* module object, so state must be captured before
    the restoring reload in the ``finally`` block re-executes it).
    """
    old_env = os.environ.get("REPRO_JIT")
    old_threads = os.environ.get("REPRO_JIT_THREADS")
    old_numba = sys.modules.get("numba", _SENTINEL)
    if jit_env is None:
        os.environ.pop("REPRO_JIT", None)
    else:
        os.environ["REPRO_JIT"] = jit_env
    if threads_env is None:
        os.environ.pop("REPRO_JIT_THREADS", None)
    else:
        os.environ["REPRO_JIT_THREADS"] = threads_env
    if numba_module is not _SENTINEL:
        sys.modules["numba"] = numba_module
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.reload(_jit)

        def kernel(x):
            return x + 1

        compiled = module.compile_kernel(kernel)
        return {
            "requested": module.REQUESTED,
            "have_numba": module.HAVE_NUMBA,
            "enabled": module.ENABLED,
            "threads": module.THREADS,
            "threaded": module.THREADED,
            "configure": module.configure_threads,
            "warnings": [str(w.message) for w in caught],
            "passthrough": compiled is kernel,
            "result": compiled(41),
        }
    finally:
        if old_env is None:
            os.environ.pop("REPRO_JIT", None)
        else:
            os.environ["REPRO_JIT"] = old_env
        if old_threads is None:
            os.environ.pop("REPRO_JIT_THREADS", None)
        else:
            os.environ["REPRO_JIT_THREADS"] = old_threads
        if old_numba is _SENTINEL:
            sys.modules.pop("numba", None)
        else:
            sys.modules["numba"] = old_numba
        importlib.reload(_jit)


def test_requested_without_numba_warns_and_falls_back():
    # sys.modules[name] = None makes ``import numba`` raise ImportError.
    probe = _probe("1", None)
    assert probe["requested"]
    assert not probe["have_numba"]
    assert not probe["enabled"]
    assert any("falling back" in message for message in probe["warnings"])
    # Disabled -> compile_kernel is the identity, not a numba wrapper.
    assert probe["passthrough"]


def test_not_requested_is_silent_and_disabled():
    probe = _probe(None, None)
    assert not probe["requested"]
    assert not probe["enabled"]
    assert not probe["warnings"]
    assert probe["passthrough"]


@pytest.mark.skipif(not _jit.HAVE_NUMBA, reason="numba not installed")
def test_requested_with_numba_compiles():
    probe = _probe("1", _SENTINEL)
    assert probe["enabled"]
    assert not probe["warnings"]
    assert not probe["passthrough"]
    assert probe["result"] == 42


class TestThreadsParsing:
    def test_unset_means_serial(self):
        probe = _probe(None, None)
        assert probe["threads"] == 0
        assert not probe["threaded"]

    def test_empty_means_serial(self):
        probe = _probe(None, None, threads_env="")
        assert probe["threads"] == 0
        assert not probe["threaded"]

    def test_garbage_warns_and_falls_back(self):
        probe = _probe("1", None, threads_env="lots")
        assert probe["threads"] == 0
        assert not probe["threaded"]
        assert any("REPRO_JIT_THREADS" in m for m in probe["warnings"])

    def test_negative_clamps_to_serial(self):
        probe = _probe("1", None, threads_env="-3")
        assert probe["threads"] == 0
        assert not probe["threaded"]

    def test_threads_without_jit_enabled_warns(self):
        # REPRO_JIT_THREADS=2 but the kernels never compiled (numba
        # missing here): the request is inert and says so once.
        probe = _probe("1", None, threads_env="2")
        assert not probe["enabled"]
        assert not probe["threaded"]
        assert any("REPRO_JIT_THREADS" in m and "single-threaded" in m
                   for m in probe["warnings"])

    def test_threads_without_jit_request_still_parses_and_warns(self):
        # Threads set but REPRO_JIT unset: count is parsed (so flipping
        # REPRO_JIT=1 on later picks it up) but no kernels exist, and
        # the inert request is called out just like the numba-less case.
        probe = _probe(None, None, threads_env="4")
        assert not probe["requested"]
        assert probe["threads"] == 4
        assert not probe["threaded"]
        assert any("REPRO_JIT_THREADS" in m for m in probe["warnings"])


class TestConfigureThreads:
    def test_refuses_without_numba(self):
        # configure_threads is the bench hook for thread-scaling lanes;
        # on a numba-less host it reports failure instead of lying.
        probe = _probe("1", None, threads_env="0")
        assert probe["configure"](2) is False

    @pytest.mark.skipif(_jit.ENABLED, reason="compiled backend active")
    def test_refusal_leaves_module_state_alone(self):
        before = (_jit.THREADS, _jit.THREADED, _jit.walk_kernel)
        assert _jit.configure_threads(2) is False
        assert (_jit.THREADS, _jit.THREADED, _jit.walk_kernel) == before

    @pytest.mark.skipif(not _jit.HAVE_NUMBA, reason="numba not installed")
    def test_roundtrip_with_numba(self):
        # Flip to 1 thread (always within the launched pool) and back.
        import numba

        start = (_jit.THREADS, _jit.THREADED)
        try:
            assert _jit.configure_threads(1) is True
            assert _jit.THREADED and _jit.THREADS == 1
            assert _jit.walk_kernel is not None
            too_many = int(numba.config.NUMBA_NUM_THREADS) + 1
            assert _jit.configure_threads(too_many) is False
            assert _jit.THREADS == 1  # refusal leaves state alone
            assert _jit.configure_threads(0) is True
            assert not _jit.THREADED and _jit.THREADS == 0
        finally:
            _jit.configure_threads(start[0] if start[1] else 0)
