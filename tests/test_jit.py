"""The optional numba backend gate (repro.engines._jit).

The module decides at import time; these tests reload it under forced
environments so both decisions are covered wherever the suite runs —
with or without numba installed.
"""

import importlib
import os
import sys
import warnings

import pytest

import repro.engines._jit as _jit

_SENTINEL = object()


def _probe(jit_env, numba_module):
    """Reload ``_jit`` under a forced env/numba combination.

    Returns a snapshot of the reloaded module's decision (reload hands
    back the *same* module object, so state must be captured before
    the restoring reload in the ``finally`` block re-executes it).
    """
    old_env = os.environ.get("REPRO_JIT")
    old_numba = sys.modules.get("numba", _SENTINEL)
    if jit_env is None:
        os.environ.pop("REPRO_JIT", None)
    else:
        os.environ["REPRO_JIT"] = jit_env
    if numba_module is not _SENTINEL:
        sys.modules["numba"] = numba_module
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.reload(_jit)

        def kernel(x):
            return x + 1

        compiled = module.compile_kernel(kernel)
        return {
            "requested": module.REQUESTED,
            "have_numba": module.HAVE_NUMBA,
            "enabled": module.ENABLED,
            "warnings": [str(w.message) for w in caught],
            "passthrough": compiled is kernel,
            "result": compiled(41),
        }
    finally:
        if old_env is None:
            os.environ.pop("REPRO_JIT", None)
        else:
            os.environ["REPRO_JIT"] = old_env
        if old_numba is _SENTINEL:
            sys.modules.pop("numba", None)
        else:
            sys.modules["numba"] = old_numba
        importlib.reload(_jit)


def test_requested_without_numba_warns_and_falls_back():
    # sys.modules[name] = None makes ``import numba`` raise ImportError.
    probe = _probe("1", None)
    assert probe["requested"]
    assert not probe["have_numba"]
    assert not probe["enabled"]
    assert any("falling back" in message for message in probe["warnings"])
    # Disabled -> compile_kernel is the identity, not a numba wrapper.
    assert probe["passthrough"]


def test_not_requested_is_silent_and_disabled():
    probe = _probe(None, None)
    assert not probe["requested"]
    assert not probe["enabled"]
    assert not probe["warnings"]
    assert probe["passthrough"]


@pytest.mark.skipif(not _jit.HAVE_NUMBA, reason="numba not installed")
def test_requested_with_numba_compiles():
    probe = _probe("1", _SENTINEL)
    assert probe["enabled"]
    assert not probe["warnings"]
    assert not probe["passthrough"]
    assert probe["result"] == 42
