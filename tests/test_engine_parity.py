"""Seed-for-seed parity: the array kernel vs the pure-Python walker.

The ``fast`` engine (array kernel, :mod:`repro.engines.arraywalk`) and
the original pure-Python walkers must make *identical decisions*: same
RNG draws in the same order, so same success flag, cycle, steps,
rounds, and failure codes — across graph models, sizes, and densities,
on successes and failures alike.

The walkers spent their one deprecation release registered as
``engine="fast-py"``; that registry entry is retired, and they now
live on *only* as this suite's oracles, imported directly
(``_dra_fast_py`` / ``_dhc2_fast_py``) rather than dispatched through
``repro.run``.

The kernel's tree helpers are also checked structurally against the
Python originals, since round accounting flows through them.
"""

import math

import numpy as np
import pytest

import repro
from repro.engines.arraywalk import build_array_tree, edge_twins, gather_neighbors
from repro.engines.fast import (
    _dra_fast_py,
    bfs_completion_round,
    build_min_id_bfs_tree,
)
from repro.engines.fast_dhc2 import _dhc2_fast_py
from repro.engines.registry import REGISTRY
from repro.graphs import (
    gnm_random_graph,
    gnp_random_graph,
    random_regular_graph,
)

SIZES = [16, 64, 256]
MODELS = ["gnp", "gnm", "regular"]

#: Engines that count as an algorithm's parity *reference*, in
#: preference order: the message-level simulator where one exists,
#: otherwise the scalar sequential implementation.
REFERENCE_ENGINES = ("congest", "sequential")


def sample(model: str, n: int, factor: float, seed: int):
    """One graph per (model, n) in the paper's density parameterisation."""
    p = min(1.0, factor * math.log(n) / n)
    if model == "gnp":
        return gnp_random_graph(n, p, seed=seed)
    m = round(p * n * (n - 1) / 2)
    if model == "gnm":
        return gnm_random_graph(n, m, seed=seed)
    # Cap at the pairing model's practical range (cf. the CLI guard).
    degree = min(max(3, round(p * (n - 1))), n // 2)
    if (n * degree) % 2:
        degree += 1
    return random_regular_graph(n, degree, seed=seed)


def assert_parity(kernel, oracle, context: str, *, detail_keys=(),
                  fields=("success", "cycle", "steps", "rounds")):
    for field in fields:
        assert getattr(kernel, field) == getattr(oracle, field), (
            f"{context}: {field}")
    for key in detail_keys:
        assert kernel.detail.get(key) == oracle.detail.get(key), (
            f"{context}: detail[{key!r}]")


class TestDraParity:
    """Algorithm 1: dense graphs succeed, sparse ones fail — both must match."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("factor", [1.0, 8.0])
    def test_grid(self, model, n, factor):
        for seed in (1, 7):
            g = sample(model, n, factor, seed)
            kernel = repro.run(g, "dra", engine="fast", seed=seed)
            oracle = _dra_fast_py(g, seed=seed)
            assert_parity(
                kernel, oracle, f"dra {model} n={n} factor={factor} seed={seed}",
                detail_keys=("fail_codes", "rotations", "extensions", "retries"))
            assert kernel.engine == "fast" and oracle.engine == "fast-py"

    def test_step_budget_failure_matches(self):
        g = sample("gnp", 64, 8.0, seed=3)
        kernel = repro.run(g, "dra", engine="fast", seed=3, step_budget=5)
        oracle = _dra_fast_py(g, seed=3, step_budget=5)
        assert not kernel.success
        assert_parity(kernel, oracle, "dra budget", detail_keys=("fail_codes",))


class TestDhc2Parity:
    """Algorithm 3: partition walks + deterministic merges."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("n", SIZES)
    def test_grid(self, model, n):
        # Dense enough that each of the k colour classes is in the
        # walk's working regime at the larger sizes; the sparse small
        # cases exercise the failure paths.
        k = 4
        s = max(3, n // k)
        factor = 8.0 * n / s  # p = 8 ln(n)/s-ish: per-class density
        for seed in (1, 7):
            g = sample(model, n, factor, seed)
            kernel = repro.run(g, "dhc2", engine="fast", k=k, seed=seed)
            oracle = _dhc2_fast_py(g, k=k, seed=seed)
            assert_parity(kernel, oracle,
                          f"dhc2 {model} n={n} seed={seed}",
                          detail_keys=("fail", "k", "levels"))

    def test_sparse_failure_codes_match(self):
        for seed in (2, 9):
            g = sample("gnp", 64, 1.0, seed)
            kernel = repro.run(g, "dhc2", engine="fast", k=8, seed=seed)
            oracle = _dhc2_fast_py(g, k=8, seed=seed)
            assert_parity(kernel, oracle, f"dhc2 sparse seed={seed}",
                          detail_keys=("fail",))


class TestTurauParity:
    """Turau path merging: the array replay vs the CONGEST protocol.

    Covers the working (dense) regime and both failure modes — phase
    budget exhaustion and a missing closure edge — since the parity
    contract includes failure codes.
    """

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("n", [16, 64, 128])
    @pytest.mark.parametrize("factor", [2.0, 30.0])
    def test_grid(self, model, n, factor):
        for seed in (1, 7):
            g = sample(model, n, factor, seed)
            kernel = repro.run(g, "turau", engine="fast", seed=seed)
            oracle = repro.run(g, "turau", engine="congest", seed=seed)
            assert_parity(
                kernel, oracle, f"turau {model} n={n} factor={factor} seed={seed}",
                detail_keys=("fail", "phases", "initial_paths"),
                fields=("success", "cycle", "steps"))

    def test_tight_phase_budget_failure_matches(self):
        g = sample("gnp", 64, 30.0, seed=2)
        kernel = repro.run(g, "turau", engine="fast", seed=2, phase_budget=2)
        oracle = repro.run(g, "turau", engine="congest", seed=2, phase_budget=2)
        assert not kernel.success
        assert_parity(kernel, oracle, "turau tight budget",
                      detail_keys=("fail", "phases"),
                      fields=("success", "cycle", "steps"))

    def test_too_small_graph_matches(self):
        g = repro.Graph(2, [(0, 1)])
        kernel = repro.run(g, "turau", engine="fast", seed=1)
        oracle = repro.run(g, "turau", engine="congest", seed=1)
        assert not kernel.success and not oracle.success
        assert kernel.detail["fail"] == oracle.detail["fail"] == "too-small"


class TestCreParity:
    """CRE: the CSR-array replay vs the scalar sequential reference."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("factor", [1.0, 2.0, 8.0])
    def test_grid(self, model, n, factor):
        for seed in (1, 7):
            g = sample(model, n, factor, seed)
            kernel = repro.run(g, "cre", engine="fast", seed=seed)
            oracle = repro.run(g, "cre", engine="sequential", seed=seed)
            assert_parity(
                kernel, oracle, f"cre {model} n={n} factor={factor} seed={seed}",
                detail_keys=("fail", "extensions", "rotations",
                             "cycle_extensions"),
                fields=("success", "cycle", "steps"))

    def test_step_budget_failure_matches(self):
        g = sample("gnp", 64, 2.0, seed=3)
        kernel = repro.run(g, "cre", engine="fast", seed=3, step_budget=10)
        oracle = repro.run(g, "cre", engine="sequential", seed=3, step_budget=10)
        assert not kernel.success
        assert kernel.steps == oracle.steps == 10
        assert kernel.detail["fail"] == oracle.detail["fail"] == "budget"


def _reference_spec(algorithm):
    engines = REGISTRY.engines_for(algorithm)
    for name in REFERENCE_ENGINES:
        if name in engines:
            return engines[name]
    return None


@pytest.mark.parametrize(
    "spec", [s for s in REGISTRY if s.parity],
    ids=lambda s: f"{s.algorithm}/{s.engine}")
class TestRegistryParityGate:
    """Every registered parity declaration is enforceable and enforced.

    Parametrised over the live registry: registering a new engine with
    a ``parity`` declaration but no reference implementation — or one
    whose declared fields diverge from its reference — fails the build
    with no edits here.  (The CI cross-algorithm parity job runs this
    module over every registered pair on the oldest and newest
    supported Pythons.)
    """

    def test_reference_engine_registered(self, spec):
        ref = _reference_spec(spec.algorithm)
        assert ref is not None, (
            f"{spec.algorithm}/{spec.engine} declares parity "
            f"{sorted(spec.parity)} but registers no reference engine "
            f"({' or '.join(REFERENCE_ENGINES)}) to hold it against")
        assert ref.engine != spec.engine

    def test_declared_fields_match_reference_seed_for_seed(self, spec):
        # Complete graph: every algorithm's best case, where at least
        # one seed must take the success path.  (n = 96 so each of
        # DHC2's k = 4 colour classes is comfortably in its walk's
        # regime; DHC1's 4-hypernode virtual walk is Monte Carlo even
        # here, so per seed the gate asserts the *outcome* matches and
        # compares the declared fields on the successes.)
        ref = _reference_spec(spec.algorithm)
        g = gnp_random_graph(96, 1.0, seed=9)
        shared = {"delta": 1.0, "k": 4}
        succeeded = 0
        for seed in (1, 5):
            fast = spec.call(g, seed=seed, **spec.filter_kwargs(shared))
            slow = ref.call(g, seed=seed, **ref.filter_kwargs(shared))
            assert fast.success == slow.success, (
                f"{spec.algorithm}/{spec.engine}: outcome diverged from "
                f"{ref.engine} at seed {seed}")
            assert fast.cycle == slow.cycle, (
                f"{spec.algorithm}/{spec.engine}: cycle diverged from "
                f"{ref.engine} at seed {seed}")
            if not fast.success:
                continue  # partial work may be accounted differently
            succeeded += 1
            for field in sorted(spec.parity):
                assert getattr(fast, field) == getattr(slow, field), (
                    f"{spec.algorithm}/{spec.engine}: declared parity "
                    f"field {field!r} diverged from {ref.engine}")
        assert succeeded, (
            f"{spec.algorithm}: the parity gate needs a succeeding "
            f"configuration; a complete graph should not fail every seed")


@pytest.mark.parametrize(
    "spec", [s for s in REGISTRY if s.engine == "kmachine"],
    ids=lambda s: s.algorithm)
class TestKmachineOracleGate:
    """Every ``engine="kmachine"`` entry is gated by the converted oracle.

    Registering a native k-machine engine for an algorithm whose
    congest spec is not ``kmachine_convertible`` — or whose native run
    diverges from the Conversion-Theorem simulator on the same seed
    tree — fails the build with no edits here, exactly as
    :class:`TestRegistryParityGate` gates the fast engines with their
    reference walkers.
    """

    def test_converted_oracle_exists(self, spec):
        congest = REGISTRY.engines_for(spec.algorithm).get("congest")
        assert congest is not None and congest.kmachine_convertible, (
            f"{spec.algorithm}/kmachine has no convertible congest oracle "
            f"to gate it; declare kmachine_convertible on the congest spec")
        assert {"k_machines", "link_words", "partition_seed"} <= \
            spec.supported_kwargs

    def test_native_matches_converted_oracle(self, spec):
        from repro.kmachine import conversion_round_bound, run_converted_hc

        g = gnp_random_graph(96, 1.0, seed=9)
        shared = {"delta": 1.0, "k": 4}
        algo_kwargs = {kw: shared[kw] for kw in ("delta", "k")
                       if kw in REGISTRY.get(spec.algorithm,
                                             "congest").supported_kwargs}
        checked = 0
        for seed in (1, 5):
            native = spec.call(g, seed=seed, k_machines=4,
                               **spec.filter_kwargs(shared))
            converted, km = run_converted_hc(
                g, algorithm=spec.algorithm, k_machines=4, seed=seed,
                **algo_kwargs)
            assert native.success == converted.success
            assert native.cycle == converted.cycle, (
                f"{spec.algorithm}/kmachine: cycle diverged from the "
                f"converted oracle at seed {seed}")
            if not native.success:
                continue
            checked += 1
            delta_max = max(g.degree(v) for v in range(g.n))
            bound = conversion_round_bound(
                converted.messages, converted.rounds, delta_max, k=4)
            native_rounds = native.detail["kmachine_rounds"]
            # The same generous envelope TestConversionBound grants the
            # converted measurement itself.
            assert native_rounds <= 20 * bound + 10 * converted.rounds, (
                f"{spec.algorithm}/kmachine: {native_rounds} machine "
                f"rounds exceed the Conversion-Theorem envelope")
            assert native_rounds <= 4 * km.kmachine_rounds + 64, (
                f"{spec.algorithm}/kmachine: native charge drifted from "
                f"the converted oracle ({native_rounds} vs "
                f"{km.kmachine_rounds})")
        assert checked, (
            f"{spec.algorithm}/kmachine: no succeeding seed to gate on")


class TestFastPyRetirement:
    """The deprecation release is over: fast-py is no longer dispatchable."""

    def test_fast_py_absent_from_registry(self):
        assert "fast-py" not in REGISTRY.engine_names()
        with pytest.raises(ValueError, match="no 'fast-py' engine"):
            REGISTRY.get("dra", "fast-py")

    def test_oracles_stay_importable(self):
        g = sample("gnp", 16, 8.0, seed=1)
        assert _dra_fast_py(g, seed=1).engine == "fast-py"


class TestTreeHelpers:
    """The kernel's vectorised tree math vs the Python originals."""

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("seed", [1, 4])
    def test_tree_and_timing_match(self, n, seed):
        g = sample("gnp", n, 4.0, seed)
        members = list(range(n))
        py = build_min_id_bfs_tree(members, g.neighbor_list, root=0)
        arr = build_array_tree(g.indptr, g.indices,
                               np.arange(n, dtype=np.int64), root=0)
        if py is None:
            assert arr is None
            return
        assert arr is not None
        assert arr.tree_depth == py.tree_depth
        assert [int(arr.depth[v]) for v in members] == [py.depth[v] for v in members]
        assert [int(arr.parent[v]) for v in members] == [py.parent[v] for v in members]
        start = 17
        assert arr.completion_round(start) == bfs_completion_round(
            py, g.neighbor_list, start)
        for v in (0, n // 2, n - 1):
            assert arr.eccentricity(v) == py.eccentricity(v)

    def test_unreachable_returns_none(self):
        g = repro.Graph(4, [(0, 1), (2, 3)])
        assert build_array_tree(g.indptr, g.indices,
                                np.arange(4, dtype=np.int64), root=0) is None


class TestPhase1ReplayPin:
    """The shared Phase-1 replay core preserves every consumer's streams.

    DHC2/fast, DHC2/kmachine, and DHC1/kmachine all run Phase 1 through
    :mod:`repro.engines.phase1_replay`; these pins were recorded from
    the pre-extraction per-engine implementations, so any change to the
    shared core's draw order, class order, or failure accounting shows
    up here as a concrete divergence rather than a silent re-baseline.
    """

    PINS = [
        # (algorithm, engine, kwargs, seed, success, steps, rounds, cycle_hash)
        ("dhc2", "fast", {"k": 4}, 3, True, 257, 2182, "54a9e90c9f2a02dd"),
        ("dhc2", "kmachine", {"k": 4}, 3, True, 257, 2182,
         "54a9e90c9f2a02dd"),
        ("dhc1", "kmachine", {"k": 4}, 0, True, 5, 1621,
         "ae16ec33024eda91"),
    ]

    @pytest.mark.parametrize("algo,engine,kwargs,seed,success,steps,rounds,chash",
                             PINS, ids=lambda v: str(v))
    def test_success_pins(self, algo, engine, kwargs, seed, success, steps,
                          rounds, chash):
        import hashlib
        import json

        g = gnp_random_graph(192, 0.6, seed=11)
        r = repro.run(g, algo, engine=engine, seed=seed, **kwargs)
        assert r.success == success
        assert r.steps == steps
        assert r.rounds == rounds
        got = hashlib.sha256(json.dumps(r.cycle).encode()).hexdigest()[:16]
        assert got == chash

    def test_walk_failure_pin(self):
        # Failure paths route through the same core: the fail reason,
        # the round it is charged to, and the k-machine ledger total
        # must all reproduce the pre-extraction numbers.
        g = gnp_random_graph(192, 0.35, seed=11)
        r = repro.run(g, "dhc2", engine="fast", seed=9, k=4)
        assert (r.success, r.steps, r.rounds) == (False, 0, 1039)
        assert r.detail["fail"] == "walk-1"
        r = repro.run(g, "dhc1", engine="kmachine", seed=0, k=6)
        assert not r.success and r.detail["fail"] == "walk-1"
        assert r.detail["kmachine_rounds"] == 802

    def test_fast_matches_kmachine_through_shared_core(self):
        # Not a pin: whatever the core does, both consumers must agree
        # on the Phase-1-determined fields for any seed.
        g = gnp_random_graph(128, 0.7, seed=4)
        for seed in (0, 1, 2):
            fast = repro.run(g, "dhc2", engine="fast", seed=seed, k=4)
            native = repro.run(g, "dhc2", engine="kmachine", seed=seed, k=4)
            assert fast.success == native.success
            assert fast.cycle == native.cycle
            assert fast.steps == native.steps


class TestFastBatchParity:
    """``fast-batch`` is seed-for-seed identical to per-trial ``fast``.

    The batch kernel interleaves hundreds of trials' draws through
    shared array passes; these tests hold every RunResult field
    (including failure codes and step/rotation counters in ``detail``)
    against a serial loop over the same (graph, seed) pairs — on
    mixed-outcome batches, single-trial batches, and chunked batches.
    """

    FIELDS = ("success", "cycle", "steps", "rounds", "detail")

    @staticmethod
    def _mixed_batch(n, trials, *, factors=(1.0, 8.0, 14.0)):
        graphs, seeds = [], []
        for i in range(trials):
            graphs.append(sample("gnp", n, factors[i % len(factors)],
                                 seed=300 + i))
            seeds.append(50 + i)
        return graphs, seeds

    def assert_batch_parity(self, algorithm, graphs, seeds, context,
                            **kwargs):
        spec = REGISTRY.get(algorithm, "fast-batch")
        serial = REGISTRY.get(algorithm, "fast")
        got = spec.call_batch(graphs, seeds=seeds, **kwargs)
        assert len(got) == len(graphs)
        outcomes = set()
        for i, (g, s, res) in enumerate(zip(graphs, seeds, got)):
            want = serial.call(g, seed=s, **kwargs)
            outcomes.add(want.success)
            assert res.engine == "fast-batch"
            for field in self.FIELDS:
                assert getattr(res, field) == getattr(want, field), (
                    f"{context}: trial {i} field {field}")
        return outcomes

    @pytest.mark.parametrize("algorithm", ["dra", "cre"])
    @pytest.mark.parametrize("n", [16, 96])
    def test_mixed_outcome_batch(self, algorithm, n):
        graphs, seeds = self._mixed_batch(n, 9)
        outcomes = self.assert_batch_parity(
            algorithm, graphs, seeds, f"{algorithm} n={n}")
        if n == 96:
            # The density mix must actually exercise both paths.
            assert outcomes == {True, False}

    @pytest.mark.parametrize("n", [16, 96])
    def test_dhc2_mixed_outcome_batch(self, n):
        # Factor 30 caps p at 1.0 -> dense successes; the sparse end
        # exercises empty / disconnected partitions and walk failures.
        graphs, seeds = self._mixed_batch(n, 9, factors=(1.0, 8.0, 30.0))
        outcomes = self.assert_batch_parity(
            "dhc2", graphs, seeds, f"dhc2 n={n}")
        if n == 96:
            assert outcomes == {True, False}

    @pytest.mark.parametrize("n", [16, 96])
    def test_turau_mixed_outcome_batch(self, n):
        graphs, seeds = self._mixed_batch(n, 9, factors=(2.0, 8.0, 14.0))
        outcomes = self.assert_batch_parity(
            "turau", graphs, seeds, f"turau n={n}")
        if n == 96:
            assert outcomes == {True, False}

    def test_dhc2_explicit_k_batch(self):
        # k > what default_color_count picks forces tiny colour
        # classes: empty partitions and sub-3-node class walks.
        graphs, seeds = self._mixed_batch(12, 6, factors=(3.0,))
        self.assert_batch_parity("dhc2", graphs, seeds, "dhc2 k=5", k=5)

    def test_turau_phase_budget_batch(self):
        self.assert_batch_parity(
            "turau", *self._mixed_batch(48, 4, factors=(10.0,)),
            "turau budget", phase_budget=2)

    def test_turau_too_small_batch(self):
        graphs = [sample("gnp", 2, 1.0, seed=5), sample("gnp", 2, 1.0, seed=6)]
        self.assert_batch_parity("turau", graphs, [3, 4], "turau n=2")

    @pytest.mark.parametrize("algorithm", ["dra", "cre", "dhc2", "turau"])
    def test_single_trial_batch(self, algorithm):
        graphs, seeds = self._mixed_batch(64, 1, factors=(8.0,))
        self.assert_batch_parity(algorithm, graphs, seeds,
                                 f"{algorithm} B=1")

    def test_step_budget_batch(self):
        graphs, seeds = self._mixed_batch(64, 4, factors=(8.0,))
        self.assert_batch_parity("dra", graphs, seeds, "dra budget",
                                 step_budget=7)

    def test_chunked_equals_unchunked(self, monkeypatch):
        from repro.engines import fast_batch

        graphs, seeds = self._mixed_batch(48, 7)
        spec = REGISTRY.get("dra", "fast-batch")
        whole = spec.call_batch(graphs, seeds=seeds)
        monkeypatch.setattr(fast_batch, "_EDGE_BUDGET",
                            graphs[0].indices.size + 1)
        chunked = spec.call_batch(graphs, seeds=seeds)
        for a, b in zip(whole, chunked):
            for field in self.FIELDS:
                assert getattr(a, field) == getattr(b, field)

    def test_same_n_required(self):
        spec = REGISTRY.get("dra", "fast-batch")
        graphs = [sample("gnp", 16, 8.0, 1), sample("gnp", 32, 8.0, 1)]
        with pytest.raises(ValueError, match="same-n"):
            spec.call_batch(graphs, seeds=[1, 2])
        with pytest.raises(ValueError, match="one seed per graph"):
            spec.call_batch(graphs[:1], seeds=[1, 2])


class TestCsrHelpers:
    def test_gather_neighbors_matches_slices(self):
        g = sample("gnp", 64, 4.0, seed=5)
        nodes = np.array([3, 17, 17, 60], dtype=np.int64)
        expected = np.concatenate([g.neighbors(int(v)) for v in nodes])
        assert np.array_equal(
            gather_neighbors(g.indptr, g.indices, nodes), expected)

    def test_edge_twins_is_reverse_involution(self):
        g = sample("gnm", 32, 4.0, seed=2)
        twins = edge_twins(g.indptr, g.indices)
        src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees())
        dst = g.indices
        assert np.array_equal(src[twins], dst)
        assert np.array_equal(dst[twins], src)
        assert np.array_equal(twins[twins], np.arange(twins.size))
