"""Unit tests for the fast engine's tree/timing helpers."""

from repro.engines.fast import SpanningTree, bfs_completion_round, build_min_id_bfs_tree
from repro.graphs import Graph

from tests.conftest import path_graph, ring


class TestMinIdBfsTree:
    def test_ring_tree_shape(self):
        g = ring(6)
        tree = build_min_id_bfs_tree(list(range(6)), g.neighbor_list, root=0)
        assert tree.root == 0
        assert tree.tree_depth == 3
        assert tree.parent[1] == 0 and tree.parent[5] == 0

    def test_min_id_parent_rule(self):
        # Node 3 can attach under 1 or 2; the distributed rule picks 1.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        tree = build_min_id_bfs_tree([0, 1, 2, 3], g.neighbor_list, root=0)
        assert tree.parent[3] == 1
        assert tree.children[1] == [3]

    def test_unreachable_returns_none(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert build_min_id_bfs_tree([0, 1, 2, 3], g.neighbor_list, root=0) is None

    def test_subset_membership(self):
        g = ring(8)
        members = [0, 1, 2, 3]

        def nbrs(v):
            return [w for w in g.neighbor_list(v) if w in set(members)]

        tree = build_min_id_bfs_tree(members, nbrs, root=0)
        assert set(tree.depth) == set(members)

    def test_eccentricity_on_path_tree(self):
        g = path_graph(5)
        tree = build_min_id_bfs_tree(list(range(5)), g.neighbor_list, root=0)
        assert tree.eccentricity(0) == 4
        assert tree.eccentricity(2) == 2


class TestBfsCompletionRound:
    def test_single_node(self):
        tree = SpanningTree(0, {0: -1}, {0: 0}, {0: []}, [0])
        done = bfs_completion_round(tree, lambda v: [], start_round=10)
        assert done == 11  # the joined-this-round deferral

    def test_path_completion_grows_with_depth(self):
        short = path_graph(3)
        long = path_graph(9)
        t1 = build_min_id_bfs_tree(list(range(3)), short.neighbor_list, root=0)
        t2 = build_min_id_bfs_tree(list(range(9)), long.neighbor_list, root=0)
        f1 = bfs_completion_round(t1, short.neighbor_list, 0)
        f2 = bfs_completion_round(t2, long.neighbor_list, 0)
        assert f2 > f1 >= 2
