"""Batched ``G(n, p)`` generation (``repro.graphs.batch_gnp``).

The module's whole value rests on one promise: ``batch_gnp(n, p,
seeds)`` is *seed-for-seed identical* to calling ``gnp_random_graph``
once per seed, and ``GnpBatch.stacked()`` is *bit-identical* to
``stack_graph_csrs`` + ``stacked_edge_twins`` over the materialised
graphs.  These tests pin that promise across the sampling regimes
(pooled sparse, dense permutation, degenerate), the per-trial
fallback, and the rarely-taken top-up branch — the last with scripted
generators, since honest oversampling makes it a ~1e-10 event at test
sizes.
"""

import numpy as np
import pytest

from repro.engines.batchwalk import stack_graph_csrs, stacked_edge_twins
import importlib

from repro.graphs import GnpBatch, batch_gnp, gnp_random_graph

# ``repro.graphs`` re-exports the *function* ``batch_gnp``, shadowing
# the submodule attribute of the same name — go via sys.modules.
batch_gnp_module = importlib.import_module("repro.graphs.batch_gnp")
from repro.graphs._sampling import pair_count, sample_distinct

GRID = [
    # (n, p, trials): sparse pooled, dense permutation, degenerate.
    (16, 0.25, 5),
    (48, 0.10, 7),
    (64, 0.05, 3),
    (10, 0.95, 4),
    (8, 1.0, 3),
    (12, 0.0, 3),
    (1, 0.5, 2),
    (0, 0.5, 2),
    (2, 0.5, 6),
]


def reference(n, p, seeds):
    return [gnp_random_graph(n, p, seed=s) for s in seeds]


class TestSeedForSeedEquality:
    @pytest.mark.parametrize("n,p,trials", GRID)
    def test_matches_per_trial_generator(self, n, p, trials):
        seeds = [1000 + 7 * i for i in range(trials)]
        batch = batch_gnp(n, p, seeds)
        assert len(batch) == trials
        for b, want in enumerate(reference(n, p, seeds)):
            assert batch[b] == want, f"trial {b}"

    def test_mixed_densities_share_one_batch(self):
        # Same n, wildly different seeds: the pooled unique must keep
        # each trial's draws in its own keyed slot.
        seeds = list(range(20))
        batch = batch_gnp(32, 0.2, seeds)
        for b, want in enumerate(reference(32, 0.2, seeds)):
            assert batch[b] == want

    def test_fallback_path_identical(self):
        seeds = [3, 14, 159]
        pooled = batch_gnp_module._generate(24, 0.3, seeds, pooled=True)
        serial = batch_gnp_module._generate(24, 0.3, seeds, pooled=False)
        for b in range(len(seeds)):
            assert pooled[b] == serial[b]

    def test_self_check_failure_forces_fallback(self, monkeypatch):
        calls = []
        real = batch_gnp_module.sample_distinct

        def counting(rng, upper, k):
            calls.append(k)
            return real(rng, upper, k)

        monkeypatch.setattr(batch_gnp_module, "_EXACT", False)
        monkeypatch.setattr(batch_gnp_module, "sample_distinct", counting)
        seeds = [5, 6, 7]
        batch = batch_gnp(40, 0.1, seeds)
        assert calls  # sparse trials went through the serial sampler
        for b, want in enumerate(reference(40, 0.1, seeds)):
            assert batch[b] == want

    def test_pooled_sampling_exact_caches_verdict(self, monkeypatch):
        monkeypatch.setattr(batch_gnp_module, "_EXACT", None)
        assert batch_gnp_module.pooled_sampling_exact() is True
        assert batch_gnp_module._EXACT is True

    def test_overflow_guard_degrades_to_serial(self):
        # len(rngs) * upper over the int64 keying headroom: the pooled
        # unique is skipped, sample_distinct runs per trial, results
        # still match the reference stream exactly.
        upper = 2**61
        counts = np.array([3, 4], dtype=np.int64)
        rngs = [np.random.default_rng(s) for s in (11, 12)]
        got = batch_gnp_module._sample_batch_indices(
            rngs, upper, counts, pooled=True)
        want = np.concatenate([
            sample_distinct(np.random.default_rng(11), upper, 3),
            sample_distinct(np.random.default_rng(12), upper, 4),
        ])
        np.testing.assert_array_equal(got, want)


class TestStackedCsr:
    @pytest.mark.parametrize("n,p,trials", [(24, 0.2, 6), (10, 0.9, 4),
                                            (12, 0.0, 3)])
    def test_bit_identical_to_serial_stacking(self, n, p, trials):
        seeds = [70 + i for i in range(trials)]
        batch = batch_gnp(n, p, seeds)
        indptr, indices, twins = batch.stacked()
        graphs = reference(n, p, seeds)
        want_indptr, want_indices = stack_graph_csrs(graphs)
        np.testing.assert_array_equal(indptr, want_indptr)
        np.testing.assert_array_equal(indices, want_indices)
        assert indices.dtype == want_indices.dtype
        want_twins = stacked_edge_twins(want_indptr, want_indices, trials, n)
        np.testing.assert_array_equal(twins, want_twins)
        assert twins.dtype == want_twins.dtype

    def test_stacked_is_cached(self):
        batch = batch_gnp(16, 0.3, [1, 2])
        assert batch.stacked() is batch.stacked()

    def test_edge_counts(self):
        seeds = [9, 10, 11]
        batch = batch_gnp(20, 0.25, seeds)
        want = [g.indices.size // 2 for g in reference(20, 0.25, seeds)]
        np.testing.assert_array_equal(batch.edge_counts, want)
        np.testing.assert_array_equal(batch.directed_counts,
                                      [2 * w for w in want])


class TestListProtocol:
    def test_lazy_graphs_are_cached(self):
        batch = batch_gnp(16, 0.3, [1, 2, 3])
        assert batch[1] is batch[1]

    def test_negative_index_and_bounds(self):
        batch = batch_gnp(16, 0.3, [1, 2, 3])
        assert batch[-1] == batch[2]
        with pytest.raises(IndexError):
            batch[3]
        with pytest.raises(IndexError):
            batch[-4]

    def test_iteration_yields_every_trial(self):
        seeds = [4, 5, 6, 7]
        batch = batch_gnp(16, 0.4, seeds)
        assert list(batch) == reference(16, 0.4, seeds)

    def test_contiguous_slice_is_zero_copy_view(self):
        seeds = list(range(8))
        batch = batch_gnp(24, 0.2, seeds)
        view = batch[2:6]
        assert isinstance(view, GnpBatch)
        assert len(view) == 4
        assert view._lo is batch._lo  # shared pair arrays, no copy
        for i in range(4):
            assert view[i] == batch[2 + i]
        indptr, indices, twins = view.stacked()
        want_indptr, want_indices = stack_graph_csrs(
            [batch[2 + i] for i in range(4)])
        np.testing.assert_array_equal(indptr, want_indptr)
        np.testing.assert_array_equal(indices, want_indices)

    def test_empty_and_clamped_slices(self):
        batch = batch_gnp(16, 0.3, [1, 2, 3])
        assert len(batch[2:2]) == 0
        assert len(batch[2:1]) == 0
        assert len(batch[1:99]) == 2

    def test_non_unit_step_rejected(self):
        batch = batch_gnp(16, 0.3, [1, 2, 3])
        with pytest.raises(ValueError, match="contiguous"):
            batch[::2]


class ScriptedRng:
    """Replays a fixed script of ``integers`` draws; delegates the rest.

    Forces the top-up branch of distinct sampling deterministically —
    with honest oversampling a shortfall is a ~1e-10 event, so the
    branch is pinned here instead of by luck.
    """

    def __init__(self, script, choice_seed=99):
        self.script = list(script)
        self._rng = np.random.default_rng(choice_seed)

    def integers(self, low, high=None, size=None, dtype=np.int64):
        draw = np.asarray(self.script.pop(0), dtype=dtype)
        assert draw.size == size, "script out of step with the sampler"
        return draw

    def choice(self, upper, size=None, replace=True):
        return self._rng.choice(upper, size=size, replace=replace)

    def permutation(self, upper):  # pragma: no cover - dense regime only
        return self._rng.permutation(upper)


class TestTopUpBranch:
    def test_finish_sparse_matches_sample_distinct_tail(self):
        upper, k = 1000, 50
        first = int(k * 1.1) + 16   # 71 draws, only 10 distinct values
        script = [
            np.tile(np.arange(10), 8)[:first],          # round 1: 10 distinct
            np.arange(100, 100 + k - 10 + 16),          # top-up 1: now 66 > k
        ]
        a = ScriptedRng([s.copy() for s in script])
        b = ScriptedRng([s.copy() for s in script])
        want = sample_distinct(a, upper, k)
        chosen = np.unique(b.integers(0, upper, size=first, dtype=np.int64))
        got = batch_gnp_module._finish_sparse(b, upper, k, chosen)
        assert want.size == k
        np.testing.assert_array_equal(got, want)

    def test_two_round_top_up(self):
        upper, k = 1000, 50
        first = int(k * 1.1) + 16
        script = [
            np.tile(np.arange(10), 8)[:first],          # 10 distinct
            np.tile(np.arange(10, 20), 6)[:k - 10 + 16],  # +10 -> 20 distinct
            np.arange(500, 500 + k - 20 + 16),          # +46 -> 66 distinct
        ]
        a = ScriptedRng([s.copy() for s in script])
        b = ScriptedRng([s.copy() for s in script])
        want = sample_distinct(a, upper, k)
        chosen = np.unique(b.integers(0, upper, size=first, dtype=np.int64))
        got = batch_gnp_module._finish_sparse(b, upper, k, chosen)
        np.testing.assert_array_equal(got, want)


class TestValidation:
    @pytest.mark.parametrize("p", [-0.1, 1.5, float("nan")])
    def test_bad_probability(self, p):
        with pytest.raises(ValueError, match="probability"):
            batch_gnp(8, p, [0])

    def test_bad_node_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            batch_gnp(-1, 0.5, [0])

    def test_matches_gnp_validation(self):
        # The same inputs must be rejected by both entry points.
        for bad_p in (-0.1, 1.5):
            with pytest.raises(ValueError):
                gnp_random_graph(8, bad_p, seed=0)

    def test_empty_seed_list(self):
        batch = batch_gnp(16, 0.3, [])
        assert len(batch) == 0
        indptr, indices, twins = batch.stacked()
        assert indptr.size == 1 and indices.size == 0 and twins.size == 0
