"""Tests for DHC1 (hypernode phase) and the Upcast / trivial algorithms."""

import math

from repro.core import run_dhc1, run_trivial, run_upcast, upcast_sample_size
from repro.core.dhc1 import default_sqrt_colors
from repro.graphs import gnp_random_graph
from repro.verify import is_hamiltonian_cycle

from tests.conftest import complete


def dhc1_graph(n, c=2.2, seed=0):
    p = min(1.0, c * math.log(n) / math.sqrt(n))
    return gnp_random_graph(n, p, seed=seed)


class TestDhc1:
    def test_produces_verified_cycle(self):
        g = dhc1_graph(200, seed=3)
        res = run_dhc1(g, k=5, seed=4)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_more_hypernodes(self):
        g = dhc1_graph(324, c=2.0, seed=4)
        res = run_dhc1(g, k=8, seed=5)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_default_k_is_sqrt_n(self):
        assert default_sqrt_colors(256) == 16
        assert default_sqrt_colors(100) == 10

    def test_deterministic(self):
        g = dhc1_graph(200, seed=6)
        a = run_dhc1(g, k=5, seed=7)
        b = run_dhc1(g, k=5, seed=7)
        assert a.success == b.success and a.cycle == b.cycle

    def test_sparse_fails_honestly(self):
        g = gnp_random_graph(150, 0.03, seed=8)
        res = run_dhc1(g, k=5, seed=9)
        assert not res.success and res.cycle is None

    def test_memory_balance(self):
        """DHC1 is fully distributed: per-node state is degree-scaled
        (O(deg * polylog), which is o(n) in the paper's regimes) and
        balanced — no node plays the Upcast root."""
        g = dhc1_graph(200, seed=10)
        res = run_dhc1(g, k=5, seed=11, audit_memory=True)
        assert res.success
        max_deg = int(g.degrees().max())
        words = res.detail["state_words"]
        assert max(words) < 100 * (max_deg + 50)
        assert max(words) < 4 * (sum(words) / len(words))  # balanced


class TestUpcast:
    def test_produces_verified_cycle(self):
        n = 100
        g = gnp_random_graph(n, 1.2 * math.log(n) / math.sqrt(n), seed=3)
        res = run_upcast(g, seed=4)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_sample_size_formula(self):
        assert upcast_sample_size(1000, 3.0) == math.ceil(3 * math.log(1000))

    def test_root_memory_is_centralized(self):
        """Section III: the root holds Theta(n log n) words — the audit
        must show one node far above the fully-distributed scale."""
        n = 128
        g = gnp_random_graph(n, 1.5 * math.log(n) / math.sqrt(n), seed=5)
        res = run_upcast(g, seed=6, audit_memory=True)
        assert res.success
        words = sorted(res.detail["state_words"])
        assert words[-1] > n  # the root: at least Omega(n)
        assert words[len(words) // 2] < words[-1] / 4  # median node is small

    def test_tiny_sample_fails_often(self):
        """Ablation A2's mechanism: starve the sample, solve fails."""
        n = 128
        failures = 0
        for seed in range(4):
            g = gnp_random_graph(n, 1.5 * math.log(n) / math.sqrt(n), seed=seed)
            res = run_upcast(g, c_prime=0.2, seed=seed, solver_restarts=2)
            failures += not res.success
        assert failures >= 2

    def test_deterministic(self):
        n = 100
        g = gnp_random_graph(n, 1.5 * math.log(n) / math.sqrt(n), seed=9)
        assert run_upcast(g, seed=1).cycle == run_upcast(g, seed=1).cycle


class TestTrivial:
    def test_collects_everything_and_succeeds(self):
        g = gnp_random_graph(80, 0.35, seed=2)
        res = run_trivial(g, seed=3)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_rounds_scale_with_edges(self):
        """The trivial algorithm pays O(m) rounds; Upcast pays far less."""
        n = 128
        g = gnp_random_graph(n, 2.0 * math.log(n) / math.sqrt(n), seed=4)
        trivial = run_trivial(g, seed=5)
        upcast = run_upcast(g, seed=5)
        assert trivial.success and upcast.success
        assert trivial.rounds > 2 * upcast.rounds

    def test_complete_graph(self):
        res = run_trivial(complete(20), seed=1)
        assert res.success
