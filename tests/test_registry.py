"""The unified (algorithm, engine) registry and ``repro.run``.

Covers the dispatch table itself, ``engine="auto"`` resolution,
capability-driven keyword validation, cross-engine parity for every
pair that registers both a congest and a fast runner (the spec's
declared ``parity`` fields must be seed-for-seed identical), the
k-machine convertibility capability, and the deprecation shims.
"""

import math
import warnings

import pytest

import repro
from repro.engines.api import EngineSpec
from repro.engines.registry import REGISTRY, EngineRegistry, run
from repro.engines.results import RunResult
from repro.graphs import gnp_random_graph


def dense_graph(n: int, seed: int, factor: float = 8.0):
    p = min(1.0, factor * math.log(n) / n)
    return gnp_random_graph(n, p, seed=seed)


class TestRegistryTable:
    def test_builtin_pairs_present(self):
        keys = {s.key for s in REGISTRY}
        assert {("dra", "congest"), ("dra", "fast"),
                ("dhc1", "congest"),
                ("dhc2", "congest"), ("dhc2", "fast"),
                ("upcast", "congest"), ("trivial", "congest"),
                ("levy", "fast"), ("local", "fast"),
                ("posa", "sequential"),
                ("angluin-valiant", "sequential"),
                ("turau", "congest"), ("turau", "fast"),
                ("cre", "sequential"), ("cre", "fast")} <= keys

    def test_every_convertible_spec_has_a_native_kmachine_entry(self):
        # The native engine mirrors the Conversion Theorem's reach: one
        # kmachine entry per kmachine_convertible congest spec, each
        # threading the machine-model knobs.
        keys = {s.key for s in REGISTRY}
        for algorithm in REGISTRY.convertible_algorithms():
            assert (algorithm, "kmachine") in keys
            spec = REGISTRY.get(algorithm, "kmachine")
            assert {"k_machines", "link_words",
                    "partition_seed"} <= spec.supported_kwargs
            assert "cycle" in spec.parity

    def test_unknown_algorithm_message_lists_choices(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            REGISTRY.get("nope", "fast")

    def test_unknown_engine_message_lists_engines(self):
        with pytest.raises(ValueError, match="no 'congest' engine"):
            REGISTRY.get("levy", "congest")

    def test_duplicate_registration_needs_replace(self):
        reg = EngineRegistry()
        spec = EngineSpec("x", "fast", lambda g, *, seed=0: None)
        reg.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            reg.register(spec)
        reg.register(spec, replace=True)
        assert len(reg) == 1

    def test_convertible_algorithms_capability(self):
        assert REGISTRY.convertible_algorithms() == [
            "dhc1", "dhc2", "dra", "turau"]

    def test_registering_new_algorithm_is_one_call(self):
        """The extension point: a third-party algorithm plugs in."""
        reg = EngineRegistry.with_builtins()

        def run_stub(graph, *, seed=0):
            return RunResult("stub", True, list(range(graph.n)), rounds=1,
                             engine="fast")

        reg.register(EngineSpec("stub", "fast", run_stub))
        g = dense_graph(8, seed=1)
        result = run(g, "stub", registry=reg)
        assert result.algorithm == "stub"
        assert "stub" in reg.algorithms()


class TestAutoResolution:
    def test_auto_prefers_fast(self):
        assert REGISTRY.resolve("dra", "auto").engine == "fast"
        assert REGISTRY.resolve("dhc2", "auto").engine == "fast"

    def test_auto_falls_back_to_congest(self):
        assert REGISTRY.resolve("dhc1", "auto").engine == "congest"
        assert REGISTRY.resolve("upcast", "auto").engine == "congest"

    def test_auto_respects_capability_requirements(self):
        # Only the congest engine can audit memory.
        spec = REGISTRY.resolve("dra", "auto", require=["audit_memory"])
        assert spec.engine == "congest"

    def test_auto_with_unsatisfiable_requirement(self):
        with pytest.raises(ValueError, match="no engine"):
            REGISTRY.resolve("levy", "auto", require=["audit_memory"])

    def test_explicit_engine_rejects_unsupported_kwargs(self):
        with pytest.raises(ValueError, match="does not support"):
            REGISTRY.resolve("dra", "fast", require=["audit_memory"])


class TestRunEntryPoint:
    def test_run_returns_runresult(self):
        g = dense_graph(64, seed=1)
        result = repro.run(g, "dra", engine="fast", seed=1)
        assert isinstance(result, RunResult)
        assert result.engine == "fast"

    def test_run_kwarg_typo_is_loud(self):
        g = dense_graph(16, seed=1)
        with pytest.raises(ValueError, match="no engine"):
            repro.run(g, "dra", sedd=1)  # typo'd keyword never silently drops
        with pytest.raises(TypeError, match="does not support"):
            REGISTRY.get("dra", "fast").call(g, seed=1, sedd=1)

    def test_run_audit_memory_lands_on_congest(self):
        g = dense_graph(48, seed=2)
        result = repro.run(g, "dra", seed=2, audit_memory=True)
        assert result.engine == "congest"
        assert "state_words" in result.detail

    def test_sequential_engines_run(self):
        g = dense_graph(48, seed=3)
        for algorithm in ("posa", "angluin-valiant"):
            result = repro.run(g, algorithm, seed=3)
            assert result.engine == "sequential"
            assert result.rounds == 0
            if result.success:
                assert sorted(result.cycle) == list(range(48))


class TestCrossEngineParity:
    """Every (congest, fast) pair must agree on its declared parity fields."""

    def _pairs(self):
        for algorithm in REGISTRY.algorithms():
            engines = REGISTRY.engines_for(algorithm)
            if "congest" in engines and "fast" in engines:
                yield algorithm, engines["congest"], engines["fast"]

    def test_fast_specs_declare_parity(self):
        pairs = list(self._pairs())
        assert pairs, "expected at least dra and dhc2 to have both engines"
        for algorithm, _congest, fast in pairs:
            assert "cycle" in fast.parity, (
                f"{algorithm}: a fast engine that cannot reproduce the "
                f"congest cycle defeats its purpose")

    @pytest.mark.parametrize("seed", [1, 5])
    def test_declared_fields_identical_seed_for_seed(self, seed):
        # Dense enough that every dhc2 colour class is Hamiltonian, so
        # the parity contract (which covers successful runs) applies.
        n, k = 96, 4
        s = n // k
        p = min(1.0, 8.0 * math.log(s) / s)
        g = gnp_random_graph(n, p, seed=seed)
        for algorithm, congest_spec, fast_spec in self._pairs():
            kwargs = fast_spec.filter_kwargs({"delta": 1.0, "k": k})
            slow = congest_spec.call(g, seed=seed, **congest_spec.filter_kwargs(
                {"delta": 1.0, "k": k}))
            fast = fast_spec.call(g, seed=seed, **kwargs)
            assert slow.success == fast.success, algorithm
            assert slow.success, (
                f"{algorithm}: pick denser parity-test parameters")
            for field in fast_spec.parity:
                assert getattr(slow, field) == getattr(fast, field), (
                    f"{algorithm}: '{field}' diverged between engines "
                    f"(declared parity {sorted(fast_spec.parity)})")


class TestCapabilityErrorPaths:
    """Registry misuse fails loudly with actionable messages."""

    def test_unknown_algorithm_through_run(self):
        g = dense_graph(8, seed=1)
        with pytest.raises(ValueError, match="unknown algorithm 'dijkstra'"):
            repro.run(g, "dijkstra")

    def test_unknown_algorithm_lists_known_names(self):
        with pytest.raises(ValueError, match="cre") as excinfo:
            REGISTRY.get("nope", "fast")
        assert "turau" in str(excinfo.value)

    def test_congest_only_kwarg_on_sequential_spec(self):
        # fault_plan is a congest capability; requesting it against an
        # explicitly sequential spec fails at resolution time with the
        # missing keyword named, not deep inside a runner.
        with pytest.raises(ValueError, match="does not support: fault_plan"):
            REGISTRY.resolve("cre", "sequential", require=["fault_plan"])

    def test_congest_only_kwarg_unsatisfiable_on_auto(self):
        # cre has no congest engine at all, so auto resolution reports
        # every candidate's supported keywords.
        with pytest.raises(ValueError, match="no engine for algorithm 'cre'"):
            REGISTRY.resolve("cre", "auto", require=["fault_plan"])

    def test_foreign_algorithm_kwarg_rejected_at_call(self):
        g = dense_graph(8, seed=1)
        with pytest.raises(TypeError, match="does not support: phase_budget"):
            REGISTRY.get("dra", "fast").call(g, seed=1, phase_budget=3)


class TestDeprecationShims:
    def test_run_dra_fast_shim(self):
        from repro.engines.fast import run_dra_fast

        g = dense_graph(48, seed=4)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_shim = run_dra_fast(g, seed=4)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        via_registry = repro.run(g, "dra", engine="fast", seed=4)
        assert via_shim.cycle == via_registry.cycle
        assert via_shim.rounds == via_registry.rounds

    def test_run_dhc2_fast_shim(self):
        from repro.engines.fast_dhc2 import run_dhc2_fast

        g = dense_graph(96, seed=5, factor=10.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_shim = run_dhc2_fast(g, k=4, seed=5)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        via_registry = repro.run(g, "dhc2", engine="fast", k=4, seed=5)
        assert via_shim.cycle == via_registry.cycle
        assert via_shim.rounds == via_registry.rounds
