"""ParallelTrialRunner: bit-for-bit parity with the serial runner.

The parallel runner must be an implementation detail, not a semantic
choice: same seed tree, same trial order, same store records (up to the
wall-clock ``elapsed_s`` field), and the same resume behaviour.
"""

import json

import pytest

import repro
from repro.graphs import gnp_random_graph, paper_probability
from repro.harness import ParallelTrialRunner, ParameterGrid, TrialRunner, TrialStore


def dra_trial(point, seed):
    """Module-level so pool workers can unpickle it."""
    p = paper_probability(point["n"], 1.0, point["c"])
    graph = gnp_random_graph(point["n"], p, seed=seed)
    return repro.run(graph, "dra", engine="fast", seed=seed)


def mapping_trial(point, seed):
    return {"success": seed % 3 != 0, "score": float(seed % 7)}


def canonical(trials):
    return [json.dumps(t.canonical_json(), sort_keys=True) for t in trials]


class TestParallelParity:
    def test_trials_identical_to_serial(self):
        grid = ParameterGrid(n=[48, 64], c=[2.0, 8.0])
        serial = TrialRunner(dra_trial, master_seed=11).run(grid, trials=4)
        parallel = ParallelTrialRunner(dra_trial, master_seed=11, jobs=4).run(
            grid, trials=4)
        assert canonical(parallel) == canonical(serial)

    def test_store_records_byte_identical(self, tmp_path):
        grid = ParameterGrid(n=[48], c=[2.0, 8.0])
        serial_store = TrialStore(tmp_path / "serial.jsonl")
        parallel_store = TrialStore(tmp_path / "parallel.jsonl")
        TrialRunner(dra_trial, master_seed=7, store=serial_store).run(
            grid, trials=4)
        ParallelTrialRunner(dra_trial, master_seed=7, store=parallel_store,
                            jobs=4).run(grid, trials=4)
        assert canonical(serial_store.load()) == canonical(parallel_store.load())

    def test_mapping_trials_supported(self):
        grid = ParameterGrid(n=[8, 16])
        serial = TrialRunner(mapping_trial, master_seed=3).run(grid, trials=5)
        parallel = ParallelTrialRunner(mapping_trial, master_seed=3, jobs=3).run(
            grid, trials=5)
        assert canonical(parallel) == canonical(serial)

    def test_jobs_one_degrades_to_serial_path(self):
        grid = ParameterGrid(n=[8])
        runner = ParallelTrialRunner(mapping_trial, master_seed=1, jobs=1)
        trials = runner.run(grid, trials=3)
        assert canonical(trials) == canonical(
            TrialRunner(mapping_trial, master_seed=1).run(grid, trials=3))


class TestChunkedScheduling:
    """Chunking amortises IPC; it must never change what gets recorded."""

    def test_auto_chunksize_shape(self):
        auto = ParallelTrialRunner.auto_chunksize
        assert auto(1, 8) == 1
        assert auto(8, 8) == 1
        assert auto(64, 4) == 4       # ~4 chunks per worker
        assert auto(10_000, 4) == 64  # capped per-message batch
        assert auto(0, 8) == 1        # degenerate input stays valid

    def test_chunksize_must_be_positive(self):
        with pytest.raises(ValueError, match="chunksize"):
            ParallelTrialRunner(mapping_trial, chunksize=0)

    @pytest.mark.parametrize("chunksize", [None, 1, 3, 64])
    def test_store_records_byte_identical_across_chunk_sizes(
            self, tmp_path, chunksize):
        """jobs=1 and jobs=N write the same bytes for every chunking.

        This is the docstring's contract made explicit: the chunked
        path may batch tasks however it likes, but the JSONL store must
        receive the same records in the same order as a serial run —
        byte-identical up to the wall-clock ``elapsed_s`` field.
        """
        grid = ParameterGrid(n=[48, 64], c=[2.0, 8.0])
        serial_store = TrialStore(tmp_path / "serial.jsonl")
        ParallelTrialRunner(dra_trial, master_seed=13, store=serial_store,
                            jobs=1).run(grid, trials=3)
        chunked_store = TrialStore(tmp_path / f"chunked-{chunksize}.jsonl")
        ParallelTrialRunner(dra_trial, master_seed=13, store=chunked_store,
                            jobs=3, chunksize=chunksize).run(grid, trials=3)
        assert canonical(chunked_store.load()) == canonical(serial_store.load())

    def test_chunked_resume_completes_partial_store(self, tmp_path):
        grid = ParameterGrid(n=[8, 16])
        store = TrialStore(tmp_path / "partial.jsonl")
        TrialRunner(mapping_trial, master_seed=9, store=store).run(
            grid, trials=2)
        full = ParallelTrialRunner(mapping_trial, master_seed=9, store=store,
                                   jobs=2, chunksize=4).run(grid, trials=4)
        reference = TrialRunner(mapping_trial, master_seed=9).run(grid, trials=4)
        assert canonical(full) == canonical(reference)


class TestParallelResume:
    def test_resume_skips_stored_trials(self, tmp_path):
        grid = ParameterGrid(n=[8, 16])
        store = TrialStore(tmp_path / "resume.jsonl")
        runner = ParallelTrialRunner(mapping_trial, master_seed=9, store=store,
                                     jobs=2)
        first = runner.run(grid, trials=4)
        assert len(store) == 8
        again = runner.run(grid, trials=4)
        # No new records, same trials returned in the same order.
        assert len(store) == 8
        assert canonical(again) == canonical(first)

    def test_partial_resume_completes_the_grid(self, tmp_path):
        grid = ParameterGrid(n=[8, 16])
        store = TrialStore(tmp_path / "partial.jsonl")
        # Seed the store with a serial half-run (half the trials).
        TrialRunner(mapping_trial, master_seed=9, store=store).run(
            grid, trials=2)
        assert len(store) == 4
        full = ParallelTrialRunner(mapping_trial, master_seed=9, store=store,
                                   jobs=2).run(grid, trials=4)
        assert len(store) == 8
        # The completed set matches a from-scratch serial run of the
        # full grid: adding trials never changes earlier trials' seeds.
        reference = TrialRunner(mapping_trial, master_seed=9).run(grid, trials=4)
        assert canonical(full) == canonical(reference)

    def test_progress_callback_fires_per_executed_trial(self, tmp_path):
        grid = ParameterGrid(n=[8])
        seen = []
        ParallelTrialRunner(mapping_trial, master_seed=2, jobs=2).run(
            grid, trials=4, progress=seen.append)
        assert len(seen) == 4
        assert [t.trial_index for t in seen] == [0, 1, 2, 3]


class TestCanonicalJson:
    def test_elapsed_excluded_everything_else_kept(self):
        trials = TrialRunner(mapping_trial, master_seed=4).run(
            ParameterGrid(n=[8]), trials=1)
        data = trials[0].canonical_json()
        assert "elapsed_s" not in data
        assert set(data) == {"point", "trial_index", "seed", "success", "metrics"}
