"""Shared fixtures and graph builders for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.graphs import Graph, gnp_random_graph


def ring(n: int) -> Graph:
    """A cycle graph — the smallest Hamiltonian structure."""
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def complete(n: int) -> Graph:
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def path_graph(n: int) -> Graph:
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def dense_gnp(n: int, c: float = 8.0, seed: int = 0) -> Graph:
    """G(n, p) comfortably above the Hamiltonicity threshold."""
    return gnp_random_graph(n, min(1.0, c * math.log(n) / n), seed=seed)


@pytest.fixture
def small_ring() -> Graph:
    return ring(8)


@pytest.fixture
def small_complete() -> Graph:
    return complete(7)
