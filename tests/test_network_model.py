"""NetworkModel API tests (repro.congest.model).

The unified network-configuration object replaced the scattered
``network_hook=`` / ``fault_plan=`` / ``bandwidth_words=`` keywords.
These tests pin the contract: validation, byte-stable JSON round-trips,
the deprecation shims routing legacy keywords through the same path,
and the conflict rule (a value can never be silently shadowed).
"""

import json
import warnings

import pytest

from repro.congest import FaultPlan, LatencySpec, NetworkModel
from repro.congest.model import coerce_network_model, faults_summary_for
from repro.core import run_dra

from tests.conftest import dense_gnp


# ---------------------------------------------------------------------------
# LatencySpec
# ---------------------------------------------------------------------------


class TestLatencySpec:
    def test_default_is_unit(self):
        spec = LatencySpec()
        assert spec.is_unit
        assert spec.mean() == 1.0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="latency kind"):
            LatencySpec(kind="gaussian")

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError):
            LatencySpec(kind="fixed", value=0.0)
        with pytest.raises(ValueError):
            LatencySpec(kind="exponential", value=-1.0)

    def test_rejects_bad_uniform_range(self):
        with pytest.raises(ValueError):
            LatencySpec(kind="uniform", low=0.0, high=1.0)
        with pytest.raises(ValueError):
            LatencySpec(kind="uniform", low=2.0, high=1.0)

    def test_means(self):
        assert LatencySpec(kind="fixed", value=3.0).mean() == 3.0
        assert LatencySpec(kind="uniform", low=1.0, high=3.0).mean() == 2.0
        assert LatencySpec(kind="exponential", value=2.5).mean() == 2.5

    def test_json_round_trip(self):
        spec = LatencySpec(kind="uniform", low=0.25, high=4.0)
        assert LatencySpec.from_json(spec.to_json()) == spec

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown latency"):
            LatencySpec.from_json({"kind": "unit", "jitter": 0.1})

    def test_samples_are_positive_and_deterministic(self):
        import numpy as np

        for kind, kwargs in (("fixed", {"value": 2.0}),
                             ("uniform", {"low": 0.5, "high": 1.5}),
                             ("exponential", {"value": 1.0})):
            spec = LatencySpec(kind=kind, **kwargs)
            a = [spec.sample(np.random.default_rng(7)) for _ in range(5)]
            b = [spec.sample(np.random.default_rng(7)) for _ in range(5)]
            assert a == b
            assert all(x > 0 for x in a)


# ---------------------------------------------------------------------------
# NetworkModel validation
# ---------------------------------------------------------------------------


class TestNetworkModelValidation:
    def test_default_is_sync(self):
        model = NetworkModel()
        assert not model.is_async()
        assert model.latency.is_unit

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            NetworkModel(mode="semi-sync")

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth_words"):
            NetworkModel(bandwidth_words=0)

    def test_sync_mode_rejects_latency_distribution(self):
        with pytest.raises(ValueError, match="mode='async'"):
            NetworkModel(latency=LatencySpec(kind="uniform"))

    def test_sync_mode_rejects_churn(self):
        with pytest.raises(ValueError, match="churn"):
            NetworkModel(churn=[("crash", 3, 10.0)])

    def test_churn_normalised_and_validated(self):
        model = NetworkModel(mode="async",
                             churn=[("join", 2, 5.0), ("crash", 1, 2.0)])
        assert model.churn == (("crash", 1, 2.0), ("join", 2, 5.0))
        with pytest.raises(ValueError, match="churn action"):
            NetworkModel(mode="async", churn=[("sleep", 1, 2.0)])
        with pytest.raises(ValueError, match="triples"):
            NetworkModel(mode="async", churn=[("crash", 1)])
        with pytest.raises(ValueError, match=">= 0"):
            NetworkModel(mode="async", churn=[("crash", -1, 2.0)])

    def test_nested_dicts_coerce(self):
        model = NetworkModel(mode="async",
                             latency={"kind": "fixed", "value": 2.0},
                             fault_plan={"drop_probability": 0.1})
        assert isinstance(model.latency, LatencySpec)
        assert isinstance(model.fault_plan, FaultPlan)

    def test_as_async(self):
        model = NetworkModel(fault_plan=FaultPlan(drop_probability=0.1))
        flipped = model.as_async()
        assert flipped.is_async()
        assert flipped.fault_plan == model.fault_plan
        assert flipped.as_async() is flipped


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


class TestNetworkModelJson:
    def _rich(self):
        return NetworkModel(
            mode="async",
            bandwidth_words=10,
            audit_memory=True,
            fault_plan=FaultPlan(drop_probability=0.05, seed=3,
                                 dead_links=frozenset({(4, 1)}),
                                 crash_rounds={2: 7}),
            latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
            churn=[("crash", 5, 12.0)],
            seed=42,
        )

    def test_round_trip(self):
        model = self._rich()
        assert NetworkModel.from_json(model.to_json()) == model
        assert NetworkModel.from_json(model.canonical()) == model

    def test_canonical_is_byte_stable(self):
        model = self._rich()
        text = model.canonical()
        assert text == NetworkModel.from_json(text).canonical()
        # Compact separators, sorted keys — safe as a sweep-point value.
        assert json.loads(text)["mode"] == "async"
        assert ": " not in text

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown NetworkModel"):
            NetworkModel.from_json({"mode": "sync", "topology": "ring"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            NetworkModel.from_json("[1, 2]")

    def test_to_json_refuses_live_hook(self):
        model = NetworkModel(network_hook=lambda net: None)
        with pytest.raises(ValueError, match="cannot be serialised"):
            model.to_json()

    def test_fault_plan_json_round_trip(self):
        plan = FaultPlan(drop_probability=0.2, dead_links=frozenset({(9, 2)}),
                         crash_rounds={1: 5}, window=(2, 30), seed=8)
        assert FaultPlan.from_json(plan.to_json()) == plan


# ---------------------------------------------------------------------------
# Legacy-keyword shims
# ---------------------------------------------------------------------------


class TestCoerceShims:
    def test_none_is_default_sync_model(self):
        assert coerce_network_model(None) == NetworkModel()

    def test_passthrough_and_json_forms(self):
        model = NetworkModel(bandwidth_words=9)
        assert coerce_network_model(model) is model
        assert coerce_network_model(model.to_json()) == model
        assert coerce_network_model(model.canonical()) == model

    def test_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="NetworkModel"):
            coerce_network_model(3.14)

    def test_legacy_keywords_warn_and_fold(self):
        plan = FaultPlan(drop_probability=0.5)
        hook = lambda net: None  # noqa: E731
        with pytest.warns(DeprecationWarning, match="fault_plan"):
            model = coerce_network_model(fault_plan=plan, caller="run_x")
        assert model.fault_plan is plan
        with pytest.warns(DeprecationWarning, match="network_hook"):
            model = coerce_network_model(network_hook=hook)
        assert model.network_hook is hook
        with pytest.warns(DeprecationWarning, match="bandwidth_words"):
            model = coerce_network_model(bandwidth_words=6)
        assert model.bandwidth_words == 6

    def test_conflict_raises(self):
        plan = FaultPlan(drop_probability=0.5)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="one place"):
                coerce_network_model(NetworkModel(fault_plan=plan),
                                     fault_plan=plan)

    def test_legacy_route_matches_model_route(self):
        graph = dense_gnp(32, seed=9)
        plan = FaultPlan(drop_probability=0.1, seed=2)
        via_model = run_dra(graph, seed=3,
                            network=NetworkModel(fault_plan=plan))
        with pytest.warns(DeprecationWarning):
            via_legacy = run_dra(graph, seed=3, fault_plan=plan)
        assert via_legacy.success == via_model.success
        assert via_legacy.cycle == via_model.cycle
        assert via_legacy.rounds == via_model.rounds
        assert via_legacy.detail["faults"] == via_model.detail["faults"]

    def test_model_route_emits_no_deprecation_warning(self):
        graph = dense_gnp(24, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_dra(graph, seed=1,
                    network=NetworkModel(fault_plan=FaultPlan()))


# ---------------------------------------------------------------------------
# Uniform detail["faults"] reporting
# ---------------------------------------------------------------------------


class TestFaultsSummaryUniformity:
    def test_summary_absent_without_plan(self):
        assert faults_summary_for(NetworkModel()) is None
        graph = dense_gnp(24, seed=2)
        result = run_dra(graph, seed=2)
        assert "faults" not in result.detail

    def test_summary_zero_counts_with_plan(self):
        summary = faults_summary_for(
            NetworkModel(fault_plan=FaultPlan(drop_probability=0.5)))
        assert summary == {"offered": 0.0, "dropped": 0.0,
                           "drop_rate": 0.0, "crashed_nodes": 0.0}

    def test_all_four_runners_report_faults(self):
        from repro.core import run_dhc1, run_dhc2, run_turau

        graph = dense_gnp(24, seed=4)
        model = NetworkModel(fault_plan=FaultPlan(drop_probability=0.02,
                                                  seed=1))
        for runner, kwargs in ((run_dra, {}), (run_dhc1, {}),
                               (run_dhc2, {"delta": 0.5}), (run_turau, {})):
            result = runner(graph, seed=4, network=model, **kwargs)
            stats = result.detail["faults"]
            assert set(stats) == {"offered", "dropped", "drop_rate",
                                  "crashed_nodes"}, runner
            assert stats["offered"] > 0

    def test_turau_early_return_still_reports_faults(self):
        from repro.core import run_turau
        from tests.conftest import path_graph

        model = NetworkModel(fault_plan=FaultPlan(drop_probability=0.5))
        result = run_turau(path_graph(2), seed=0, network=model)
        assert result.detail["faults"]["offered"] == 0.0
        assert result.detail["faults"]["crashed_nodes"] == 0.0
