"""Tests for the experiment harness (repro.harness)."""

import json

import repro

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.results import RunResult
from repro.harness import (
    ParameterGrid,
    Trial,
    TrialRunner,
    TrialStore,
    group_by,
    quantile,
    success_rate,
    summarize,
)


class TestParameterGrid:
    def test_cartesian_product_order(self):
        grid = ParameterGrid(n=[64, 128], delta=[0.5, 0.8])
        assert grid.points() == [
            {"n": 64, "delta": 0.5}, {"n": 64, "delta": 0.8},
            {"n": 128, "delta": 0.5}, {"n": 128, "delta": 0.8},
        ]
        assert len(grid) == 4

    def test_single_axis(self):
        grid = ParameterGrid(c=[2, 4, 8])
        assert [p["c"] for p in grid] == [2, 4, 8]

    def test_subset_filters(self):
        grid = ParameterGrid(n=[64, 256, 1024], delta=[0.5, 0.8])
        feasible = grid.subset(lambda p: p["n"] ** p["delta"] >= 20)
        assert {"n": 64, "delta": 0.5} not in feasible  # 64^0.5 = 8 < 20
        assert {"n": 1024, "delta": 0.5} in feasible

    def test_with_overrides(self):
        grid = ParameterGrid(n=[64, 128])
        pinned = grid.with_overrides(c=6.0)
        assert all(p["c"] == 6.0 for p in pinned)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ParameterGrid()
        with pytest.raises(ValueError):
            ParameterGrid(n=[])

    @given(sizes=st.lists(st.integers(1, 5), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_length_is_product(self, sizes):
        axes = {f"a{i}": list(range(s)) for i, s in enumerate(sizes)}
        grid = ParameterGrid(**axes)
        expected = 1
        for s in sizes:
            expected *= s
        assert len(grid) == expected == len(grid.points())


class TestTrialRunner:
    def test_runs_every_point_and_trial(self):
        calls = []

        def fn(point, seed):
            calls.append((point["x"], seed))
            return {"success": True, "rounds": point["x"] * 10}

        runner = TrialRunner(fn, master_seed=1)
        trials = runner.run(ParameterGrid(x=[1, 2]), trials=3)
        assert len(trials) == 6
        assert len(calls) == 6
        assert all(t.success for t in trials)
        assert trials[0].metrics["rounds"] == 10.0

    def test_seed_derivation_is_stable_and_distinct(self):
        runner = TrialRunner(lambda p, s: {"success": True}, master_seed=7)
        seeds = {runner.derive_seed(i, j) for i in range(10) for j in range(10)}
        assert len(seeds) == 100  # no collisions in a small grid
        assert runner.derive_seed(3, 4) == TrialRunner(
            lambda p, s: {"success": True}, master_seed=7).derive_seed(3, 4)

    def test_different_master_seed_changes_streams(self):
        a = TrialRunner(lambda p, s: {"success": True}, master_seed=1)
        b = TrialRunner(lambda p, s: {"success": True}, master_seed=2)
        assert a.derive_seed(0, 0) != b.derive_seed(0, 0)

    def test_accepts_run_result(self):
        def fn(point, seed):
            return RunResult("dra", True, [0, 1, 2], rounds=42, messages=7)

        trials = TrialRunner(fn).run([{"n": 3}], trials=1)
        assert trials[0].metrics["rounds"] == 42.0
        assert trials[0].metrics["messages"] == 7.0

    def test_rejects_bad_return(self):
        with pytest.raises(TypeError):
            TrialRunner(lambda p, s: 42).run([{"n": 1}])
        with pytest.raises(ValueError, match="success"):
            TrialRunner(lambda p, s: {"rounds": 1}).run([{"n": 1}])

    def test_progress_callback(self):
        seen = []
        TrialRunner(lambda p, s: {"success": True}).run(
            [{"x": 1}], trials=2, progress=seen.append)
        assert len(seen) == 2
        assert all(isinstance(t, Trial) for t in seen)


class TestTrialStore:
    def test_roundtrip(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        trial = Trial(point={"n": 8, "delta": 0.5}, trial_index=2, seed=99,
                      success=True, metrics={"rounds": 12.0}, elapsed_s=0.5)
        store.append(trial)
        loaded = store.load()
        assert len(loaded) == 1
        assert loaded[0].point == {"n": 8, "delta": 0.5}
        assert loaded[0].metrics["rounds"] == 12.0
        assert loaded[0].key() == trial.key()

    def test_resume_skips_recorded_trials(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        calls = []

        def fn(point, seed):
            calls.append(point["x"])
            return {"success": True, "rounds": 1}

        runner = TrialRunner(fn, master_seed=3, store=store)
        grid = ParameterGrid(x=[1, 2])
        first = runner.run(grid, trials=2)
        assert len(calls) == 4
        second = runner.run(grid, trials=2)
        assert len(calls) == 4  # nothing re-ran
        assert [t.key() for t in second] == [t.key() for t in first]

    def test_resume_runs_only_new_trials(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        calls = []

        def fn(point, seed):
            calls.append(1)
            return {"success": True}

        runner = TrialRunner(fn, master_seed=3, store=store)
        runner.run([{"x": 1}], trials=1)
        runner.run([{"x": 1}], trials=3)  # 2 new trial indices
        assert len(calls) == 3
        assert len(store) == 3

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrialStore(path)
        store.append(Trial(point={"x": 1}, trial_index=0, seed=1, success=True))
        with path.open("a") as fh:
            fh.write('{"point": {"x": 2}, "trial_in')  # crash mid-append
        assert len(store.load()) == 1

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrialStore(path)
        with path.open("w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps(Trial(
                point={"x": 1}, trial_index=0, seed=1,
                success=True).to_json()) + "\n")
        with pytest.raises(json.JSONDecodeError):
            store.load()

    def test_clear(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        store.append(Trial(point={}, trial_index=0, seed=0, success=False))
        store.clear()
        assert store.load() == []
        store.clear()  # idempotent


class TestAggregation:
    def _trials(self):
        return [
            Trial(point={"n": 64}, trial_index=i, seed=i,
                  success=i != 3, metrics={"rounds": float(100 + i)})
            for i in range(5)
        ] + [
            Trial(point={"n": 128}, trial_index=i, seed=i,
                  success=True, metrics={"rounds": float(200 + i)})
            for i in range(5)
        ]

    def test_success_rate(self):
        assert success_rate(self._trials()) == pytest.approx(0.9)
        assert success_rate([]) == 0.0

    def test_summarize_successes_only(self):
        stats = summarize(self._trials(), "rounds")
        # Failed trial 3 of n=64 excluded: values are 100,101,102,104,200..204
        assert stats["n_values"] == 9
        assert stats["min"] == 100.0
        assert stats["max"] == 204.0
        assert stats["success_rate"] == pytest.approx(0.9)

    def test_summarize_all_trials(self):
        stats = summarize(self._trials(), "rounds", successes_only=False)
        assert stats["n_values"] == 10

    def test_summarize_empty_metric(self):
        stats = summarize(self._trials(), "nonexistent")
        assert "mean" not in stats
        assert stats["n_values"] == 0

    def test_group_by_parameter(self):
        groups = group_by(self._trials(), "n")
        assert list(groups) == [64, 128]
        assert len(groups[64]) == 5

    def test_group_by_callable(self):
        groups = group_by(self._trials(), lambda t: t.success)
        assert len(groups[True]) == 9
        assert len(groups[False]) == 1

    def test_quantile(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert quantile([5.0], 0.0) == 5.0
        assert quantile([1.0, 3.0], 0.25) == 1.5
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
           q=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_quantile_within_range(self, values, q):
        result = quantile(values, q)
        assert min(values) <= result <= max(values)


class TestBatchedRunner:
    """Batched dispatch (``batch_fn``) must not change what is computed."""

    @staticmethod
    def _fns(algorithm="dra"):
        from repro.engines.registry import REGISTRY
        from repro.graphs import gnp_random_graph, paper_probability

        spec = REGISTRY.resolve(algorithm, "fast-batch")

        def sample(point, seed):
            p = paper_probability(point["n"], 1.0, point["c"])
            return gnp_random_graph(point["n"], p, seed=seed)

        def trial(point, seed):
            return spec.call(sample(point, seed), seed=seed)

        def batch(point, seeds):
            graphs = [sample(point, s) for s in seeds]
            return spec.call_batch(graphs, seeds=list(seeds))

        return trial, batch

    @pytest.mark.parametrize("algorithm", ["dra", "dhc2", "turau"])
    def test_batched_store_is_byte_identical(self, tmp_path, algorithm):
        trial, batch = self._fns(algorithm)
        grid = ParameterGrid(n=[24, 32], c=[8.0])
        solo = TrialStore(tmp_path / "solo.jsonl")
        TrialRunner(trial, master_seed=11, store=solo).run(grid, trials=5)
        batched = TrialStore(tmp_path / "batched.jsonl")
        got = TrialRunner(trial, master_seed=11, store=batched,
                          batch_fn=batch, batch_size=3).run(grid, trials=5)
        assert [t.canonical_json() for t in solo.load()] \
            == [t.canonical_json() for t in batched.load()]
        # Results surface in schedule order with real per-trial metadata.
        assert [t.trial_index for t in got] == [0, 1, 2, 3, 4] * 2

    @pytest.mark.parametrize("algorithm", ["dra", "dhc2", "turau"])
    def test_parallel_batched_matches_serial_batched(self, tmp_path,
                                                     algorithm):
        trial, batch = self._fns(algorithm)
        from repro.harness import ParallelTrialRunner

        grid = ParameterGrid(n=[24, 32], c=[8.0])
        serial = TrialStore(tmp_path / "serial.jsonl")
        TrialRunner(trial, master_seed=11, store=serial,
                    batch_fn=batch, batch_size=3).run(grid, trials=4)
        par = TrialStore(tmp_path / "par.jsonl")
        ParallelTrialRunner(trial, master_seed=11, store=par, jobs=2,
                            batch_fn=batch, batch_size=3).run(grid, trials=4)
        assert [t.canonical_json() for t in serial.load()] \
            == [t.canonical_json() for t in par.load()]

    @pytest.mark.parametrize("algorithm", ["dhc2", "turau"])
    def test_batched_resume_is_byte_identical(self, tmp_path, algorithm):
        # A batched rerun over a half-filled store must append exactly
        # the records the unbatched serial run would have written.
        trial, batch = self._fns(algorithm)
        grid = ParameterGrid(n=[24], c=[8.0])
        solo = TrialStore(tmp_path / "solo.jsonl")
        TrialRunner(trial, master_seed=11, store=solo).run(grid, trials=6)
        resumed = TrialStore(tmp_path / "resumed.jsonl")
        TrialRunner(trial, master_seed=11, store=resumed).run(grid, trials=2)
        TrialRunner(trial, master_seed=11, store=resumed,
                    batch_fn=batch, batch_size=4).run(grid, trials=6)
        assert [t.canonical_json() for t in solo.load()] \
            == [t.canonical_json() for t in resumed.load()]

    def test_callable_batch_size_caps_per_point(self, tmp_path):
        # batch_size(point) sizes each grid point's groups on its own
        # (the auto-batching sweep path); records stay byte-identical.
        trial, batch = self._fns()
        grid = ParameterGrid(n=[24, 32], c=[8.0])
        calls = []

        def counting_batch(point, seeds):
            calls.append((point["n"], len(seeds)))
            return batch(point, seeds)

        solo = TrialStore(tmp_path / "solo.jsonl")
        TrialRunner(trial, master_seed=11, store=solo).run(grid, trials=4)
        sized = TrialStore(tmp_path / "sized.jsonl")
        TrialRunner(trial, master_seed=11, store=sized,
                    batch_fn=counting_batch,
                    batch_size=lambda point: 3 if point["n"] == 24 else 2
                    ).run(grid, trials=4)
        assert calls == [(24, 3), (24, 1), (32, 2), (32, 2)]
        assert [t.canonical_json() for t in solo.load()] \
            == [t.canonical_json() for t in sized.load()]

    def test_callable_batch_size_parallel_grouping(self):
        from repro.harness import ParallelTrialRunner

        trial, batch = self._fns()
        got = ParallelTrialRunner(
            trial, master_seed=11, jobs=2, batch_fn=batch,
            batch_size=lambda point: max(1, point["n"] // 16)).run(
            ParameterGrid(n=[16, 48], c=[8.0]), trials=3)
        want = TrialRunner(trial, master_seed=11).run(
            ParameterGrid(n=[16, 48], c=[8.0]), trials=3)
        assert [t.canonical_json() for t in got] \
            == [t.canonical_json() for t in want]

    def test_batched_resume_skips_completed(self, tmp_path):
        trial, batch = self._fns()
        grid = ParameterGrid(n=[24], c=[8.0])
        store = TrialStore(tmp_path / "resume.jsonl")
        TrialRunner(trial, master_seed=11, store=store).run(grid, trials=2)
        calls = []

        def counting_batch(point, seeds):
            calls.append(list(seeds))
            return batch(point, seeds)

        got = TrialRunner(trial, master_seed=11, store=store,
                          batch_fn=counting_batch, batch_size=4).run(
            grid, trials=6)
        # Only the four new trials reach the engine, as one group.
        assert len(got) == 6 and len(calls) == 1 and len(calls[0]) == 4

    def test_batch_fn_result_count_is_checked(self):
        trial, batch = self._fns()
        runner = TrialRunner(trial, master_seed=1,
                             batch_fn=lambda point, seeds: [], batch_size=2)
        with pytest.raises(ValueError, match="batch_fn returned"):
            runner.run(ParameterGrid(n=[16], c=[8.0]), trials=2)

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            TrialRunner(lambda p, s: {}, batch_size=0)


class TestEndToEndSweep:
    def test_harness_drives_a_real_algorithm(self, tmp_path):
        """A miniature E6-style sweep through the public harness API."""
        from repro.graphs import gnp_random_graph, paper_probability

        def trial(point, seed):
            p = paper_probability(point["n"], 1.0, point["c"])
            graph = gnp_random_graph(point["n"], p, seed=seed)
            return repro.run(graph, "dra", engine="fast", seed=seed)

        grid = ParameterGrid(n=[64], c=[2.0, 8.0])
        store = TrialStore(tmp_path / "sweep.jsonl")
        trials = TrialRunner(trial, master_seed=5, store=store).run(
            grid, trials=4)
        by_c = group_by(trials, "c")
        # Denser graphs must not succeed less often.
        assert success_rate(by_c[8.0]) >= success_rate(by_c[2.0])
        assert success_rate(by_c[8.0]) >= 0.75
        # And everything was persisted.
        assert len(store) == 8
