"""Tests for the theory-bound formulas and fitting helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    diameter_bound_sparse,
    dra_step_budget,
    fit_power_law,
    klee_larman_diameter,
    partition_size_bounds,
    predicted_dhc1_rounds,
    predicted_dhc2_rounds,
    predicted_dra_steps,
    predicted_upcast_rounds,
)
from repro.analysis.bounds import dra_round_budget


class TestBudgets:
    def test_dra_step_budget_shape(self):
        assert dra_step_budget(100) == int(7 * 100 * math.log(100)) + 64
        assert dra_step_budget(0) == 64

    def test_diameter_bound_grows_slowly(self):
        assert diameter_bound_sparse(100) < diameter_bound_sparse(10_000)
        assert diameter_bound_sparse(10_000) < 80

    def test_round_budget_dominates_typical_runs(self):
        # Empirically DRA on n=100 uses ~3k rounds; the watchdog is far above.
        assert dra_round_budget(100) > 20_000

    def test_klee_larman(self):
        assert klee_larman_diameter(0.5) == 2
        assert klee_larman_diameter(1 / 3) == 3
        with pytest.raises(ValueError):
            klee_larman_diameter(0.0)

    def test_partition_bounds(self):
        lo, hi = partition_size_bounds(1000, 10)
        assert lo == 50.0 and hi == 150.0


class TestPredictions:
    def test_dra_steps_monotone(self):
        assert predicted_dra_steps(200) > predicted_dra_steps(100)

    def test_dhc_round_shapes(self):
        n = 4096
        assert predicted_dhc2_rounds(n, 0.5) == pytest.approx(predicted_dhc1_rounds(n))
        assert predicted_dhc2_rounds(n, 0.3) < predicted_dhc2_rounds(n, 0.7)

    def test_upcast_inverse_p(self):
        assert predicted_upcast_rounds(1000, 0.1) == pytest.approx(
            2 * predicted_upcast_rounds(1000, 0.2))


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        xs = [10.0, 20.0, 40.0, 80.0]
        ys = [3.0 * x**0.5 for x in xs]
        a, b = fit_power_law(xs, ys)
        assert a == pytest.approx(3.0, rel=1e-9)
        assert b == pytest.approx(0.5, rel=1e-9)

    @given(
        a=st.floats(0.1, 10),
        b=st.floats(-2, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_laws(self, a, b):
        xs = [5.0, 11.0, 23.0, 47.0, 95.0]
        ys = [a * x**b for x in xs]
        fa, fb = fit_power_law(xs, ys)
        assert fb == pytest.approx(b, abs=1e-6)
        assert fa == pytest.approx(a, rel=1e-6)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [2.0, 3.0])
