"""Failure-injection tests (repro.congest.faults).

The paper's model is fault-free; these tests validate the library's
safety promise instead: under message loss, dead links, or crash-stop
nodes, every front end either still produces a *verified* Hamiltonian
cycle or reports failure — it never claims success falsely, and the
simulator never raises out of a faulty run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.faults import FaultInjector, FaultPlan
from repro.core import run_dhc2, run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.verify import is_hamiltonian_cycle


def _graph(n=48, seed=11, c=6.0):
    return gnp_random_graph(n, paper_probability(n, 0.5, c), seed=seed)


# ---------------------------------------------------------------------------
# FaultPlan validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_default_plan_is_benign(self):
        assert FaultPlan().is_benign()

    def test_nonbenign_detection(self):
        assert not FaultPlan(drop_probability=0.1).is_benign()
        assert not FaultPlan(dead_links=frozenset({(1, 2)})).is_benign()
        assert not FaultPlan(crash_rounds={3: 10}).is_benign()

    def test_dead_links_normalised_to_sorted_pairs(self):
        plan = FaultPlan(dead_links=frozenset({(7, 3), (2, 5)}))
        assert plan.dead_links == frozenset({(3, 7), (2, 5)})

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=-0.1)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            FaultPlan(window=(10, 5))


# ---------------------------------------------------------------------------
# Injection mechanics
# ---------------------------------------------------------------------------


class TestInjectorMechanics:
    def test_benign_plan_changes_nothing(self):
        graph = _graph()
        native = run_dra(graph, seed=4)
        injector = FaultInjector(FaultPlan())
        faulty = run_dra(graph, seed=4, network_hook=injector.attach)
        assert faulty.success == native.success
        assert faulty.cycle == native.cycle
        assert faulty.rounds == native.rounds
        assert injector.dropped == 0
        assert injector.offered == native.messages

    def test_double_attach_rejected(self):
        graph = _graph(n=16)
        injector = FaultInjector(FaultPlan())

        def hook(network):
            injector.attach(network)
            with pytest.raises(RuntimeError, match="already has"):
                injector.attach(network)

        run_dra(graph, seed=1, network_hook=hook)

    def test_total_blackout_drops_everything(self):
        graph = _graph(n=32)
        injector = FaultInjector(FaultPlan(drop_probability=1.0))
        result = run_dra(graph, seed=2, network_hook=injector.attach)
        assert not result.success
        assert result.cycle is None
        assert injector.dropped == injector.offered > 0

    def test_window_limits_drops(self):
        graph = _graph(n=32)
        # Blackout only the first two delivery rounds (the leader
        # election's initial flood): the run must lose something, but
        # later traffic (deadline-driven BFS, walk) must survive.
        injector = FaultInjector(FaultPlan(drop_probability=1.0, window=(1, 2)))
        run_dra(graph, seed=2, network_hook=injector.attach)
        assert 0 < injector.dropped < injector.offered

    def test_summary_counters(self):
        graph = _graph(n=32)
        injector = FaultInjector(FaultPlan(drop_probability=0.3, seed=9))
        run_dra(graph, seed=2, network_hook=injector.attach)
        s = injector.summary()
        assert s["offered"] > 0
        assert 0.0 <= s["drop_rate"] <= 1.0
        assert s["dropped"] == injector.dropped


# ---------------------------------------------------------------------------
# Safety under faults: no false success, no exceptions
# ---------------------------------------------------------------------------


class TestSafetyUnderFaults:
    @pytest.mark.parametrize("drop_p", [0.02, 0.1, 0.5])
    def test_dra_never_reports_false_success_under_drops(self, drop_p):
        graph = _graph(n=40, seed=3)
        for seed in range(4):
            injector = FaultInjector(FaultPlan(drop_probability=drop_p, seed=seed))
            result = run_dra(graph, seed=seed, network_hook=injector.attach)
            if result.success:
                assert is_hamiltonian_cycle(graph, result.cycle)
            else:
                assert result.cycle is None

    def test_dhc2_never_reports_false_success_under_drops(self):
        graph = _graph(n=48, seed=5)
        for seed in range(3):
            injector = FaultInjector(FaultPlan(drop_probability=0.05, seed=seed))
            result = run_dhc2(graph, delta=0.5, seed=seed,
                              network_hook=injector.attach)
            if result.success:
                assert is_hamiltonian_cycle(graph, result.cycle)
            else:
                assert result.cycle is None

    def test_early_crash_of_every_node_fails_cleanly(self):
        graph = _graph(n=32)
        plan = FaultPlan(crash_rounds={v: 2 for v in range(32)})
        injector = FaultInjector(plan)
        result = run_dra(graph, seed=1, network_hook=injector.attach)
        assert not result.success
        assert len(injector.crashed) == 32

    def test_single_crash_mid_run_is_fatal_but_clean(self):
        # A Hamiltonian cycle needs every node; killing one mid-run must
        # produce a clean failure.
        graph = _graph(n=32, seed=8)
        plan = FaultPlan(crash_rounds={5: 20})
        injector = FaultInjector(plan)
        result = run_dra(graph, seed=3, network_hook=injector.attach)
        assert not result.success
        assert injector.crashed == {5}

    def test_crash_after_termination_is_noop(self):
        graph = _graph(n=32, seed=8)
        native = run_dra(graph, seed=4)
        plan = FaultPlan(crash_rounds={5: native.rounds + 10_000})
        injector = FaultInjector(plan)
        result = run_dra(graph, seed=4, network_hook=injector.attach)
        assert result.success == native.success
        assert result.cycle == native.cycle
        assert injector.crashed == set()

    def test_dead_links_degrade_but_stay_safe(self):
        graph = _graph(n=32, seed=9)
        # Kill a band of links touching node 0.
        dead = frozenset((0, w) for w in graph.neighbor_list(0)[:3])
        injector = FaultInjector(FaultPlan(dead_links=dead))
        result = run_dra(graph, seed=2, network_hook=injector.attach)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
            for u, v in dead:
                # A dead link cannot carry a cycle edge acknowledgement;
                # but the cycle may still *name* the edge only if the
                # walk never needed a message over it — verify overall
                # validity is already checked above.
                pass
        else:
            assert result.cycle is None

    @given(drop_p=st.floats(0.0, 0.8), seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_no_exception_no_false_success_property(self, drop_p, seed):
        graph = _graph(n=24, seed=1)
        injector = FaultInjector(FaultPlan(drop_probability=drop_p, seed=seed))
        result = run_dra(graph, seed=seed, network_hook=injector.attach)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
        else:
            assert result.cycle is None


class TestRegistryFaultPlan:
    """fault_plan is a declared registry capability (ROADMAP item):
    sweeps mix fault scenarios without importing repro.congest.faults
    at call sites, and engine="auto" steers such runs onto the
    simulator — the only engine that can inject."""

    def test_repro_run_accepts_fault_plan(self):
        import repro

        graph = _graph(n=32, seed=9)
        result = repro.run(graph, "dra", seed=2,
                           fault_plan=FaultPlan(drop_probability=1.0))
        assert result.engine == "congest"  # auto-steered to the simulator
        assert not result.success
        assert result.detail["faults"]["dropped"] > 0

    def test_benign_plan_preserves_native_decisions(self):
        import repro

        graph = _graph()
        native = run_dra(graph, seed=3)
        observed = repro.run(graph, "dra", engine="congest", seed=3,
                             fault_plan=FaultPlan())
        assert observed.success == native.success
        assert observed.cycle == native.cycle
        assert observed.rounds == native.rounds
        assert observed.detail["faults"]["offered"] > 0
        assert observed.detail["faults"]["dropped"] == 0

    def test_every_congest_hc_spec_declares_fault_plan(self):
        from repro.engines.registry import REGISTRY

        for algorithm in ("dra", "dhc1", "dhc2"):
            spec = REGISTRY.get(algorithm, "congest")
            assert "fault_plan" in spec.supported_kwargs, algorithm

    def test_fast_engine_rejects_fault_plan(self):
        from repro.engines.registry import REGISTRY

        with pytest.raises(ValueError, match="does not support"):
            REGISTRY.resolve("dra", "fast", require=["fault_plan"])

    def test_composes_with_existing_network_hook(self):
        from repro.congest.faults import compose_fault_hook

        seen = []
        hook, injector = compose_fault_hook(
            FaultPlan(drop_probability=1.0), network_hook=seen.append)
        graph = _graph(n=24, seed=4)
        result = run_dra(graph, seed=4, network_hook=hook)
        assert len(seen) == 1  # the caller's hook still ran
        assert not result.success
        assert injector.dropped > 0
