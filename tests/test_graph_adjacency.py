"""Unit tests for the CSR Graph data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph

from tests.conftest import complete, ring


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0

    def test_edgeless_graph(self):
        g = Graph(5)
        assert g.n == 5 and g.m == 0
        assert all(g.degree(v) == 0 for v in g.nodes())

    def test_simple_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.m == 3
        assert g.degree(1) == 2
        assert g.neighbor_list(1) == [0, 2]

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)


class TestQueries:
    def test_has_edge_both_orientations(self):
        g = Graph(4, [(0, 2)])
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 1)

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3)])
        assert list(g.neighbors(2)) == [0, 3, 4]

    def test_degrees_vector(self):
        g = ring(6)
        assert list(g.degrees()) == [2] * 6

    def test_edges_iteration_normalized(self):
        g = Graph(4, [(3, 1), (0, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_edge_array_matches_edges(self):
        g = complete(5)
        arr = g.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(g.edges())

    def test_contains_and_len(self):
        g = Graph(3)
        assert 2 in g and 3 not in g
        assert len(g) == 3

    def test_equality_and_hash(self):
        g1 = Graph(3, [(0, 1)])
        g2 = Graph(3, [(1, 0)])
        assert g1 == g2 and hash(g1) == hash(g2)
        assert g1 != Graph(3, [(0, 2)])


class TestSubgraph:
    def test_induced_subgraph(self):
        g = complete(5)
        sub, mapping = g.subgraph([1, 3, 4])
        assert sub.n == 3 and sub.m == 3
        assert mapping == {1: 0, 3: 1, 4: 2}

    def test_subgraph_drops_external_edges(self):
        g = ring(6)
        sub, _ = g.subgraph([0, 1, 3])
        assert sub.m == 1  # only (0, 1) survives

    def test_duplicate_selection_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ring(4).subgraph([0, 0])

    def test_unordered_selection_relabels_in_given_order(self):
        # The mapping follows the order given, not node-id order; the
        # vectorised membership pass must preserve that contract.
        g = ring(6)
        sub, mapping = g.subgraph([4, 3, 5])
        assert mapping == {4: 0, 3: 1, 5: 2}
        assert sub.m == 2  # (3,4) and (4,5) survive
        assert sub.has_edge(0, 1) and sub.has_edge(0, 2)

    def test_empty_selection(self):
        sub, mapping = ring(4).subgraph([])
        assert sub.n == 0 and sub.m == 0 and mapping == {}

    @given(
        n=st.integers(2, 20),
        edges=st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60),
        pick=st.lists(st.integers(0, 19), unique=True, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_subgraph_matches_pairwise_definition(self, n, edges, pick):
        clean = [(a % n, b % n) for a, b in edges if a % n != b % n]
        g = Graph(n, clean)
        nodes = [v % n for v in pick if v % n < n]
        nodes = list(dict.fromkeys(nodes))
        sub, mapping = g.subgraph(nodes)
        assert sub.n == len(nodes)
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                assert sub.has_edge(i, j) == g.has_edge(u, v)


class TestCsrViews:
    def test_indptr_indices_define_neighbor_slices(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        indptr, indices = g.indptr, g.indices
        assert indptr.shape == (g.n + 1,)
        assert indices.shape == (2 * g.m,)
        for v in g.nodes():
            row = indices[indptr[v]:indptr[v + 1]]
            assert np.array_equal(row, g.neighbors(v))

    def test_rows_sorted_ascending(self):
        g = complete(6)
        for v in g.nodes():
            row = g.indices[g.indptr[v]:g.indptr[v + 1]]
            assert np.all(np.diff(row) > 0)


@given(
    n=st.integers(2, 25),
    edges=st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=80),
)
@settings(max_examples=60, deadline=None)
def test_graph_invariants_hold_for_arbitrary_input(n, edges):
    """Degrees sum to 2m; adjacency is symmetric; neighbours sorted."""
    clean = [(a % n, b % n) for a, b in edges if a % n != b % n]
    g = Graph(n, clean)
    assert int(g.degrees().sum()) == 2 * g.m
    for v in g.nodes():
        row = g.neighbors(v)
        assert list(row) == sorted(set(row.tolist()))
        for w in row:
            assert g.has_edge(int(w), v)
