"""Multi-host sharding: disjoint slices, unchanged seeds, exact merges."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.harness import (
    JsonlStore,
    MemoryStore,
    ParallelTrialRunner,
    ParameterGrid,
    ShardedStore,
    ShardSpec,
    Trial,
    TrialRunner,
    merge_stores,
)


def mapping_trial(point, seed):
    return {"success": True, "score": float(seed % 11)}


def canonical(trials):
    return [json.dumps(t.canonical_json(), sort_keys=True) for t in trials]


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("0/4") == ShardSpec(0, 4)
        assert ShardSpec.parse(" 3 / 8 ") == ShardSpec(3, 8)

    @pytest.mark.parametrize("text", ["4", "a/b", "1-4", "", "-1/4"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError, match="shard"):
            ShardSpec.parse(text)

    def test_bounds(self):
        with pytest.raises(ValueError, match="index"):
            ShardSpec(4, 4)
        with pytest.raises(ValueError, match="count"):
            ShardSpec(0, 0)

    def test_coerce_forms(self):
        assert ShardSpec.coerce(None) is None
        assert ShardSpec.coerce("1/3") == ShardSpec(1, 3)
        assert ShardSpec.coerce((1, 3)) == ShardSpec(1, 3)
        spec = ShardSpec(0, 2)
        assert ShardSpec.coerce(spec) is spec
        assert spec.label == "0of2"

    @given(points=st.integers(1, 12), trials=st.integers(1, 6),
           count=st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_slices_disjoint_and_exhaustive(self, points, trials, count):
        """The acceptance property: a partition, whatever the grid."""
        grid = [(p, t) for p in range(points) for t in range(trials)]
        owners = {
            pair: [i for i in range(count)
                   if ShardSpec(i, count).owns(*pair, trials)]
            for pair in grid
        }
        assert all(len(who) == 1 for who in owners.values())

    def test_round_robin_interleaves_within_a_point(self):
        # Adjacent trials of one (expensive) point land on different
        # hosts — the skew-balancing property.
        spec0, spec1 = ShardSpec(0, 2), ShardSpec(1, 2)
        owned0 = [t for t in range(6) if spec0.owns(0, t, 6)]
        owned1 = [t for t in range(6) if spec1.owns(0, t, 6)]
        assert owned0 == [0, 2, 4] and owned1 == [1, 3, 5]


class TestShardedRunner:
    def test_seeds_unchanged_from_unsharded_run(self):
        grid = ParameterGrid(x=[1, 2, 3])
        reference = TrialRunner(mapping_trial, master_seed=7).run(
            grid, trials=5)
        sharded: list[Trial] = []
        for index in range(3):
            sharded.extend(TrialRunner(
                mapping_trial, master_seed=7, shard=(index, 3)).run(
                grid, trials=5))
        assert sorted(canonical(sharded)) == sorted(canonical(reference))
        by_key = {t.key(): t.seed for t in sharded}
        assert all(by_key[t.key()] == t.seed for t in reference)

    def test_parallel_sharded_work_stealing_matches(self, tmp_path):
        grid = ParameterGrid(x=[1, 2])
        reference = TrialRunner(mapping_trial, master_seed=4).run(
            grid, trials=6)
        stores = []
        for index in range(2):
            store = ShardedStore(tmp_path / "d", shard=f"{index}of2")
            stores.append(store)
            ParallelTrialRunner(
                mapping_trial, master_seed=4, shard=(index, 2), jobs=2,
                schedule="work-stealing", store=store).run(grid, trials=6)
        merged = merge_stores(stores)
        assert canonical(merged) == canonical(reference)

    def test_shard_resumes_only_its_slice(self, tmp_path):
        store = ShardedStore(tmp_path / "d", shard="0of2")
        grid = ParameterGrid(x=[1, 2])
        runner = TrialRunner(mapping_trial, master_seed=2, shard=(0, 2),
                             store=store)
        first = runner.run(grid, trials=4)
        again = runner.run(grid, trials=4)
        assert canonical(again) == canonical(first)
        assert len(store) == len(first)  # nothing re-appended


class TestMergeStores:
    def _filled(self, trials=3):
        stores = [MemoryStore(), MemoryStore()]
        grid = ParameterGrid(x=[1, 2])
        for index, store in enumerate(stores):
            TrialRunner(mapping_trial, master_seed=1, shard=(index, 2),
                        store=store).run(grid, trials=trials)
        return stores, grid

    def test_merge_writes_canonical_jsonl_byte_identical(self, tmp_path):
        stores, grid = self._filled()
        serial_store = JsonlStore(tmp_path / "serial.jsonl")
        TrialRunner(mapping_trial, master_seed=1, store=serial_store).run(
            grid, trials=3)
        dest = JsonlStore(tmp_path / "merged.jsonl")
        merge_stores(stores, dest, expect_trials=3)

        # This grid enumerates in canonical order, so the merged JSONL
        # must equal the serial store byte for byte once the only
        # wall-clock field is stripped.
        def lines(path):
            out = []
            for line in path.read_text().splitlines():
                record = json.loads(line)
                record.pop("elapsed_s", None)
                out.append(json.dumps(record, sort_keys=True))
            return out
        assert lines(dest.path) == lines(serial_store.path)

    def test_require_records_rejects_empty_merge(self, tmp_path):
        dest = JsonlStore(tmp_path / "merged.jsonl")
        with pytest.raises(ValueError, match="no trial records"):
            merge_stores([MemoryStore()], dest, require_records=True)
        assert not dest.path.exists()  # dest untouched on failure
        # The default stays permissive for library callers that handle
        # emptiness themselves.
        assert merge_stores([MemoryStore()]) == []

    def test_duplicate_agreement_is_tolerated(self):
        stores, _ = self._filled()
        doubled = stores + [stores[0]]  # same shard merged twice
        assert canonical(merge_stores(doubled)) == \
            canonical(merge_stores(stores))

    def test_conflicting_duplicate_is_a_hard_error(self):
        a, b = MemoryStore(), MemoryStore()
        t = Trial(point={"x": 1}, trial_index=0, seed=1, success=True)
        a.append(t)
        b.append(Trial(point={"x": 1}, trial_index=0, seed=2, success=False))
        with pytest.raises(ValueError, match="disagreement"):
            merge_stores([a, b])

    def test_missing_shard_is_detected(self):
        stores, _ = self._filled()
        with pytest.raises(ValueError, match="incomplete"):
            merge_stores([stores[1]])  # trial index 0 of x=1 lives in shard 0

    def test_expect_trials_detects_short_points(self):
        stores, _ = self._filled(trials=3)
        with pytest.raises(ValueError, match="expected 4 trials"):
            merge_stores(stores, expect_trials=4)

    def test_expect_points_detects_wholly_missing_point(self):
        # trials=1, N=2: round-robin puts each whole point on one
        # shard, so a missing shard leaves no per-point gap — only
        # the point count can catch it.
        stores = [MemoryStore(), MemoryStore()]
        grid = ParameterGrid(x=[1, 2])
        for index, store in enumerate(stores):
            TrialRunner(mapping_trial, master_seed=1, shard=(index, 2),
                        store=store).run(grid, trials=1)
        merged = merge_stores([stores[0]], expect_trials=1)  # undetected
        assert len(merged) == 1
        with pytest.raises(ValueError, match="expected 2 grid points"):
            merge_stores([stores[0]], expect_trials=1, expect_points=2)
        assert len(merge_stores(stores, expect_trials=1,
                                expect_points=2)) == 2


class TestShardedSweepCli:
    """End-to-end: the CI smoke job's contract as a local test."""

    def test_two_shard_sweep_merge_equals_serial(self, capsys, tmp_path):
        args = ("sweep", "--algorithm", "dra", "--engine", "fast",
                "--sizes", "24,32", "--trials", "3", "--c", "8",
                "--delta", "1.0", "--seed", "5", "--json")
        serial = tmp_path / "serial.jsonl"
        assert main([*args, "--store", str(serial)]) == 0
        shard_dir = tmp_path / "shards"
        for shard in ("0/2", "1/2"):
            assert main([*args, "--shard", shard, "--store-backend",
                         "sharded", "--store", str(shard_dir)]) == 0
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", str(shard_dir), "--out", str(merged),
                     "--trials", "3", "--points", "2"]) == 0
        capsys.readouterr()

        def strip(path):
            out = []
            for line in path.read_text().splitlines():
                record = json.loads(line)
                record.pop("elapsed_s", None)
                out.append(json.dumps(record, sort_keys=True))
            return out

        assert strip(merged) == strip(serial)

    def test_sharded_backend_requires_store_path(self, capsys):
        code = main(["sweep", "--sizes", "24,32", "--store-backend",
                     "sharded"])
        assert code == 2
        assert "needs --store" in capsys.readouterr().err

    def test_bad_shard_is_a_clean_error(self, capsys):
        code = main(["sweep", "--sizes", "24,32", "--shard", "2"])
        assert code == 2
        assert "shard" in capsys.readouterr().err

    def test_nonexistent_merge_source_is_a_clean_error(self, capsys,
                                                       tmp_path):
        # A typo'd source must not pass as an empty store (that would
        # silently drop a shard's records from the merge).
        code = main(["merge", str(tmp_path / "shard_stoer"),
                     "--out", str(tmp_path / "m.jsonl")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
