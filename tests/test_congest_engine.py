"""Tests for the CONGEST simulator: model rules, delivery, metrics."""

import numpy as np
import pytest

from repro.congest import (
    BandwidthExceededError,
    DuplicateSendError,
    Message,
    Network,
    NotANeighborError,
    Protocol,
    RoundLimitExceeded,
    payload_bits,
    state_size_words,
    word_bits,
)
from repro.graphs import Graph

from tests.conftest import path_graph, ring


class Silent(Protocol):
    def __init__(self, v):
        self.v = v

    def on_round(self, ctx, inbox):
        ctx.halt()


class TestMessageAccounting:
    def test_word_bits(self):
        assert word_bits(1) == 1
        assert word_bits(255) == 8
        assert word_bits(256) == 9

    def test_payload_bits_counts_fields(self):
        assert payload_bits(("k", 1, 2, 3), 255) == 8 + 3 * 8

    def test_message_kind(self):
        msg = Message(0, ("ping", 7))
        assert msg.kind == "ping"
        assert msg.bits(255) == 8 + 8


class TestModelRules:
    def test_bandwidth_enforced(self):
        class Chatty(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "big", *range(50))

            def on_round(self, ctx, inbox):
                ctx.halt()

        net = Network(ring(4), lambda v: Chatty(), bandwidth_words=8)
        with pytest.raises(BandwidthExceededError):
            net.run(max_rounds=5)

    def test_one_message_per_edge_per_round(self):
        class Doubler(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "a")
                ctx.send(ctx.neighbors[0], "b")

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(DuplicateSendError):
            Network(ring(4), lambda v: Doubler()).run(max_rounds=5)

    def test_non_neighbor_send_rejected(self):
        class Reacher(Protocol):
            def on_start(self, ctx):
                ctx.send((ctx.node_id + 2) % ctx.n, "x")

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(NotANeighborError):
            Network(ring(6), lambda v: Reacher()).run(max_rounds=5)

    def test_edge_free_reflects_usage(self):
        seen = {}

        class Checker(Protocol):
            def on_start(self, ctx):
                seen["before"] = ctx.edge_free(ctx.neighbors[0])
                ctx.send(ctx.neighbors[0], "x")
                seen["after"] = ctx.edge_free(ctx.neighbors[0])
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        Network(ring(3), lambda v: Checker()).run(max_rounds=3)
        assert seen == {"before": True, "after": False}


class TestDeliverySemantics:
    def test_next_round_delivery_and_sender(self):
        log = []

        class PingPong(Protocol):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(1, "ping", 42)

            def on_round(self, ctx, inbox):
                for msg in inbox:
                    log.append((ctx.round_index, msg.sender, msg.payload))
                ctx.halt()

        Network(path_graph(2), lambda v: PingPong()).run(max_rounds=4)
        assert log == [(1, 0, ("ping", 42))]

    def test_inbox_sorted_by_sender(self):
        order = []

        class Collect(Protocol):
            def on_start(self, ctx):
                if ctx.node_id != 2:
                    ctx.send(2, "hi")

            def on_round(self, ctx, inbox):
                order.extend(m.sender for m in inbox)
                ctx.halt()

        g = Graph(4, [(0, 2), (1, 2), (3, 2)])
        Network(g, lambda v: Collect()).run(max_rounds=4)
        assert order == [0, 1, 3]

    def test_wake_scheduling(self):
        fired = []

        class Sleeper(Protocol):
            def on_start(self, ctx):
                ctx.request_wake(5)

            def on_round(self, ctx, inbox):
                fired.append(ctx.round_index)
                ctx.halt()

        Network(ring(3), lambda v: Sleeper()).run(max_rounds=10)
        assert fired == [5, 5, 5]

    def test_wake_must_be_future(self):
        class BadWake(Protocol):
            def on_start(self, ctx):
                ctx.request_wake(0)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ValueError):
            Network(ring(3), lambda v: BadWake()).run(max_rounds=3)


class TestTermination:
    def test_quiescence_without_halt(self):
        class Once(Protocol):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(ctx.neighbors[0], "x")

            def on_round(self, ctx, inbox):
                pass  # never halts, never sends again

        net = Network(ring(4), lambda v: Once())
        metrics = net.run(max_rounds=100)
        assert metrics.rounds == 1  # quiesced after the single delivery

    def test_round_limit_raises(self):
        class Forever(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "x")

            def on_round(self, ctx, inbox):
                ctx.send(ctx.neighbors[0], "x")

        with pytest.raises(RoundLimitExceeded):
            Network(ring(4), lambda v: Forever()).run(max_rounds=10)

    def test_round_limit_soft(self):
        class Forever(Protocol):
            def on_start(self, ctx):
                ctx.send(ctx.neighbors[0], "x")

            def on_round(self, ctx, inbox):
                ctx.send(ctx.neighbors[0], "x")

        metrics = Network(ring(4), lambda v: Forever()).run(
            max_rounds=10, raise_on_limit=False)
        assert metrics.rounds == 10


class TestMetrics:
    def test_message_and_bit_totals(self):
        class OneShot(Protocol):
            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(ctx.neighbors[0], "x", 1, 2)

            def on_round(self, ctx, inbox):
                ctx.halt()

        net = Network(ring(4), lambda v: OneShot())
        metrics = net.run(max_rounds=4)
        assert metrics.messages == 1
        assert metrics.bits == payload_bits(("x", 1, 2), 4)
        assert metrics.max_sent() == 1

    def test_per_node_rng_deterministic(self):
        draws = {}

        class Draw(Protocol):
            def on_start(self, ctx):
                draws.setdefault(ctx.node_id, []).append(int(ctx.rng.integers(1000)))
                ctx.halt()

            def on_round(self, ctx, inbox):
                ctx.halt()

        Network(ring(4), lambda v: Draw(), seed=9).run(max_rounds=2)
        first = dict(draws)
        draws.clear()
        Network(ring(4), lambda v: Draw(), seed=9).run(max_rounds=2)
        assert draws == first
        assert len(set(tuple(v) for v in first.values())) > 1  # nodes independent

    def test_state_size_words(self):
        assert state_size_words(5) == 1
        assert state_size_words([1, 2, 3]) == 4
        assert state_size_words({"a": 1}) == 3
        assert state_size_words(np.zeros(10)) == 11
