"""Tests for the distributed rotation algorithm (Algorithm 1, Theorem 2)."""

import math

import pytest

from repro.analysis.bounds import dra_step_budget
from repro.core import run_dra
from repro.core.rotation import FAIL_NO_EDGES, FAIL_TOO_SMALL
import repro
from repro.graphs import Graph
from repro.verify import is_hamiltonian_cycle

from tests.conftest import complete, dense_gnp, path_graph, ring


class TestDraCongest:
    def test_finds_cycle_on_dense_gnp(self):
        g = dense_gnp(80, c=8, seed=11)
        res = run_dra(g, seed=5)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_cycle_output_contract(self):
        """End of Section I-A: each node knows its two cycle edges."""
        g = complete(20)
        res = run_dra(g, seed=3)
        assert res.success and len(res.cycle) == 20

    def test_ring_succeeds(self):
        # A ring has exactly one HC; the walk must find it.
        res = run_dra(ring(12), seed=1)
        assert res.success

    def test_path_fails_honestly(self):
        res = run_dra(path_graph(10), seed=1)
        assert not res.success
        assert FAIL_NO_EDGES in res.detail["fail_codes"]

    def test_too_small_graph(self):
        res = run_dra(complete(2), seed=0)
        assert not res.success
        assert FAIL_TOO_SMALL in res.detail["fail_codes"]

    def test_step_budget_respected(self):
        g = dense_gnp(60, c=8, seed=2)
        res = run_dra(g, seed=3)
        assert res.steps <= dra_step_budget(60)

    def test_deterministic_given_seed(self):
        g = dense_gnp(60, c=8, seed=7)
        a = run_dra(g, seed=4)
        b = run_dra(g, seed=4)
        assert a.cycle == b.cycle and a.rounds == b.rounds

    def test_memory_stays_sublinear_ish(self):
        """Fully-distributed claim: no node state explodes to O(n log n)."""
        n = 100
        g = dense_gnp(n, c=8, seed=1)
        res = run_dra(g, seed=2, audit_memory=True)
        assert res.success
        # Each node keeps O(degree + tree) words; degree ~ 8 ln n here.
        assert res.detail["max_state_words"] < 40 * math.log(n) * 8


class TestDraFastEngine:
    @pytest.mark.parametrize("n,c,seed", [(60, 8, 1), (90, 7, 2), (140, 6, 3)])
    def test_engines_agree_exactly(self, n, c, seed):
        """The headline cross-validation: same cycle, steps, and rounds."""
        g = dense_gnp(n, c=c, seed=seed)
        slow = run_dra(g, seed=seed + 10)
        fast = repro.run(g, "dra", engine="fast", seed=seed + 10)
        assert slow.success == fast.success
        assert slow.cycle == fast.cycle
        assert slow.steps == fast.steps
        assert slow.rounds == fast.rounds

    def test_engines_agree_on_failure(self):
        g = dense_gnp(200, c=4, seed=7)  # marginal density: may fail
        slow = run_dra(g, seed=1)
        fast = repro.run(g, "dra", engine="fast", seed=1)
        assert slow.success == fast.success
        assert slow.rounds == fast.rounds

    def test_fast_engine_validates_output(self):
        g = dense_gnp(120, c=8, seed=4)
        res = repro.run(g, "dra", engine="fast", seed=6)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_step_bound_theorem2_shape(self):
        """Steps stay within 7 n ln n (Theorem 2) with a wide margin."""
        for n, seed in [(100, 0), (200, 1), (400, 2)]:
            g = dense_gnp(n, c=8, seed=seed)
            res = repro.run(g, "dra", engine="fast", seed=seed)
            assert res.success
            assert res.steps <= 7 * n * math.log(n)

    def test_disconnected_graph_fails(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not repro.run(g, "dra", engine="fast", seed=0).success
        assert not run_dra(g, seed=0).success

    def test_rotation_and_extension_counters(self):
        g = dense_gnp(100, c=8, seed=5)
        res = repro.run(g, "dra", engine="fast", seed=3)
        detail = res.detail
        assert detail["extensions"] == 99  # n-1 extensions exactly
        assert detail["extensions"] + detail["rotations"] + detail["retries"] \
            == res.steps - 1  # final step is the closure
