"""Tests for the trace subsystem (repro.trace)."""

import pytest

from repro.core import run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.kmachine.partition import VertexPartition
from repro.trace import (
    TraceRecorder,
    activity_timeline,
    kind_summary,
    node_lens,
)


def _traced_dra(n=48, seed=4, **recorder_kwargs):
    graph = gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=seed)
    recorder = TraceRecorder(**recorder_kwargs)
    result = run_dra(graph, seed=seed, network_hook=recorder.attach)
    return result, recorder


class TestTraceRecorder:
    def test_records_all_delivered_messages(self):
        result, recorder = _traced_dra()
        assert result.success
        # Every protocol message was observed and (capacity permitting)
        # recorded; messages == trace events for an unfiltered trace.
        assert recorder.total_seen == result.messages
        assert len(recorder) == result.messages
        assert recorder.dropped == 0

    def test_rounds_are_monotone_and_positive(self):
        _, recorder = _traced_dra()
        rounds = recorder.rounds()
        assert rounds == sorted(rounds)
        assert rounds[0] >= 1

    def test_kind_filter(self):
        _, unfiltered = _traced_dra()
        _, walk_only = _traced_dra(kinds=["rw."])
        kinds = set(walk_only.by_kind())
        assert kinds  # the walk sent something
        assert all(k.startswith("rw.") for k in kinds)
        assert len(walk_only) < len(unfiltered)
        # Filtering happens pre-storage, but observation still counts.
        assert walk_only.total_seen == unfiltered.total_seen

    def test_node_filter(self):
        _, recorder = _traced_dra(nodes=[0])
        assert len(recorder) > 0
        assert all(0 in (e.src, e.dst) for e in recorder.events())

    def test_capacity_ring_buffer(self):
        _, recorder = _traced_dra(capacity=100)
        assert len(recorder) == 100
        assert recorder.dropped == recorder.total_seen - 100
        # Retained events are the most recent ones.
        all_events = _traced_dra()[1].events()
        assert recorder.events() == all_events[-100:]

    def test_involving_and_where(self):
        _, recorder = _traced_dra()
        mine = recorder.involving(3)
        assert all(3 in (e.src, e.dst) for e in mine)
        late = recorder.where(lambda e: e.round_index > 10)
        assert all(e.round_index > 10 for e in late)

    def test_by_kind_sorted_desc(self):
        _, recorder = _traced_dra()
        counts = list(recorder.by_kind().values())
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(recorder)

    def test_chains_with_existing_observer(self):
        # Attach on top of k-machine accounting: both observers must see
        # the full traffic of the same run.
        from repro.kmachine.simulation import _LinkAccountant

        graph = gnp_random_graph(32, paper_probability(32, 0.5, 6.0), seed=2)
        part = VertexPartition.round_robin(32, 2)
        accountant = _LinkAccountant(part, link_words=16)
        recorder = TraceRecorder()

        def hook(network):
            network.round_observer = accountant.observe
            recorder.attach(network)  # must chain, not clobber

        result = run_dra(graph, seed=2, network_hook=hook)
        assert recorder.total_seen == result.messages
        assert (accountant.metrics.cross_words
                + accountant.metrics.local_words) > 0
        assert accountant.metrics.congest_rounds == result.rounds

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestRenderings:
    def test_activity_timeline_shows_span(self):
        _, recorder = _traced_dra()
        art = activity_timeline(recorder)
        assert "events" in art
        assert "[" in art and "]" in art

    def test_timeline_empty(self):
        assert "empty" in activity_timeline(TraceRecorder())

    def test_kind_summary_table(self):
        _, recorder = _traced_dra()
        table = kind_summary(recorder)
        assert "kind" in table
        assert "share" in table
        # Walk progress messages must appear for a successful DRA.
        assert "rw." in table

    def test_kind_summary_empty(self):
        assert "empty" in kind_summary(TraceRecorder())

    def test_node_lens_direction_arrows(self):
        _, recorder = _traced_dra()
        lens = node_lens(recorder, 0, limit=10)
        assert "->" in lens or "<-" in lens

    def test_node_lens_limit(self):
        _, recorder = _traced_dra()
        lens = node_lens(recorder, 0, limit=3)
        assert "more" in lens

    def test_node_lens_unknown_node(self):
        _, recorder = _traced_dra(nodes=[1])
        assert "no recorded traffic" in node_lens(recorder, 10**6)


class TestPhaseStructure:
    """Trace-level assertions about protocol *shape*, not just outcome."""

    def test_dra_phases_in_order(self):
        _, recorder = _traced_dra()
        kinds = recorder.by_kind()
        first_election = min(
            e.round_index for e in recorder.events() if e.kind.startswith("lm."))
        first_bfs = min(
            e.round_index for e in recorder.events() if e.kind.startswith("bt."))
        first_walk = min(
            e.round_index for e in recorder.events() if e.kind.startswith("rw."))
        assert first_election < first_bfs < first_walk
        # Election traffic is a flood: at least one message per node.
        assert kinds[next(k for k in kinds if k.startswith("lm."))] >= 48
