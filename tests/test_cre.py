"""The CRE solver: moves, failure codes, and threshold behaviour.

Cross-engine parity lives in ``tests/test_engine_parity.py``; this
module covers the algorithm itself.  The headline property is the
paper's: CRE keeps working at densities just above the Hamiltonicity
threshold where the plain rotation walks die, because the cycle-
extension move escapes closed non-spanning cycles.
"""

import math

import repro
from repro.core.cre import (
    CRE_FAIL_BUDGET,
    CRE_FAIL_STRANDED,
    CRE_FAIL_TOO_SMALL,
    cre_step_budget,
    run_cre,
)
from repro.graphs import gnp_random_graph
from repro.verify.hamiltonicity import verify_cycle


def threshold_graph(n: int, factor: float, seed: int):
    return gnp_random_graph(n, min(1.0, factor * math.log(n) / n), seed=seed)


class TestRunCre:
    def test_finds_verified_cycle(self):
        g = threshold_graph(128, 4.0, seed=1)
        result = run_cre(g, seed=1)
        assert result.success
        verify_cycle(g, result.cycle)
        assert result.rounds == 0 and result.engine == "sequential"
        assert result.steps >= 128 - 1

    def test_deterministic_seed_for_seed(self):
        g = threshold_graph(96, 3.0, seed=2)
        assert run_cre(g, seed=2).cycle == run_cre(g, seed=2).cycle

    def test_move_counters_add_up(self):
        g = threshold_graph(96, 2.0, seed=3)
        result = run_cre(g, seed=3)
        moves = (result.detail["extensions"] + result.detail["rotations"]
                 + result.detail["cycle_extensions"])
        # Closure is the termination condition, not a move: the
        # breakdown accounts for every step exactly.
        assert moves == result.steps

    def test_closure_on_last_budgeted_move_succeeds(self):
        # A Hamilton path completed by the final allowed move must
        # close, not report a budget failure one comparison short.
        g = threshold_graph(128, 4.0, seed=1)
        full = run_cre(g, seed=1)
        assert full.success
        exact = run_cre(g, seed=1, step_budget=full.steps)
        assert exact.success
        assert exact.cycle == full.cycle
        assert not run_cre(g, seed=1, step_budget=full.steps - 1).success

    def test_too_small_graph(self):
        result = run_cre(repro.Graph(2, [(0, 1)]), seed=1)
        assert not result.success
        assert result.detail["fail"] == CRE_FAIL_TOO_SMALL

    def test_step_budget_exhaustion(self):
        g = threshold_graph(128, 2.0, seed=4)
        result = run_cre(g, seed=4, step_budget=5)
        assert not result.success
        assert result.steps == 5
        assert result.detail["fail"] == CRE_FAIL_BUDGET

    def test_stranded_on_a_star(self):
        # A star has no Hamilton cycle; the walk strands at a leaf.
        g = repro.Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        result = run_cre(g, seed=1)
        assert not result.success
        assert result.detail["fail"] == CRE_FAIL_STRANDED

    def test_default_budget_scale(self):
        assert cre_step_budget(256) >= 256
        assert cre_step_budget(1024) > cre_step_budget(256)


class TestThresholdBehaviour:
    """The paper's selling point, measured: CRE outlives the walks."""

    def test_beats_posa_near_threshold(self):
        n, factor = 192, 2.5
        cre_wins = posa_wins = 0
        for seed in range(8):
            g = threshold_graph(n, factor, seed)
            cre_wins += repro.run(g, "cre", seed=seed).success
            posa_wins += repro.run(g, "posa", seed=seed).success
        assert cre_wins > posa_wins
        assert cre_wins >= 6

    def test_cycle_extensions_actually_fire_when_sparse(self):
        fired = 0
        for seed in range(8):
            g = threshold_graph(128, 1.5, seed)
            fired += run_cre(g, seed=seed).detail["cycle_extensions"]
        assert fired > 0

    def test_auto_engine_is_fast(self):
        result = repro.run(threshold_graph(64, 4.0, 1), "cre", seed=1)
        assert result.engine == "fast"
