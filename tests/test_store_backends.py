"""The store backend layer: JSONL, sharded, memory — one contract."""

import json

import pytest

from repro.harness import (
    STORE_BACKENDS,
    JsonlStore,
    MemoryStore,
    ParameterGrid,
    ShardedStore,
    Trial,
    TrialRunner,
    TrialStore,
    make_store,
)


def mapping_trial(point, seed):
    return {"success": True, "score": float(seed % 5)}


def make_trial(x=1, index=0, seed=1):
    return Trial(point={"x": x}, trial_index=index, seed=seed, success=True,
                 metrics={"rounds": 10.0 + x})


class TestBackwardCompat:
    def test_trialstore_call_builds_jsonl(self, tmp_path):
        store = TrialStore(tmp_path / "t.jsonl")
        assert isinstance(store, JsonlStore)
        store.append(make_trial())
        assert len(store.load()) == 1

    def test_subclasses_instantiate_normally(self):
        assert isinstance(MemoryStore(), MemoryStore)

    def test_backend_registry_and_factory(self, tmp_path):
        assert {"jsonl", "sharded", "memory"} <= set(STORE_BACKENDS)
        assert isinstance(make_store("jsonl", tmp_path / "a.jsonl"), JsonlStore)
        assert isinstance(make_store("sharded", tmp_path / "d"), ShardedStore)
        with pytest.raises(ValueError, match="unknown store backend"):
            make_store("sqlite", tmp_path / "x")


class TestJsonlLen:
    """__len__ counts complete lines without decoding any JSON."""

    def test_len_matches_load(self, tmp_path):
        store = JsonlStore(tmp_path / "t.jsonl")
        assert len(store) == 0
        for i in range(5):
            store.append(make_trial(index=i))
        assert len(store) == len(store.load()) == 5

    def test_len_excludes_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = JsonlStore(path)
        store.append(make_trial())
        with path.open("a") as fh:
            fh.write('{"point": {"x": 2}, "trial_in')  # crash mid-append
        assert len(store) == len(store.load()) == 1

    def test_len_does_not_json_decode(self, tmp_path, monkeypatch):
        store = JsonlStore(tmp_path / "t.jsonl")
        for i in range(3):
            store.append(make_trial(index=i))

        def boom(*a, **k):  # pragma: no cover - should never run
            raise AssertionError("__len__ must not decode JSON")

        monkeypatch.setattr(json, "loads", boom)
        assert len(store) == 3


class TestShardedStore:
    def test_lock_free_writers_merge_deterministically(self, tmp_path):
        a = ShardedStore(tmp_path / "d", shard="0of2")
        b = ShardedStore(tmp_path / "d", shard="1of2")
        # Interleave appends in "temporal" order that differs from
        # canonical order.
        b.append(make_trial(x=2, index=1, seed=4))
        a.append(make_trial(x=1, index=0, seed=1))
        b.append(make_trial(x=1, index=1, seed=2))
        a.append(make_trial(x=2, index=0, seed=3))
        merged = a.load()
        assert merged == b.load()  # any handle sees the whole directory
        assert [(t.point["x"], t.trial_index) for t in merged] == \
            [(1, 0), (1, 1), (2, 0), (2, 1)]  # canonical, not write, order
        assert len(a) == 4

    def test_per_shard_torn_tail_is_tolerated(self, tmp_path):
        a = ShardedStore(tmp_path / "d", shard="a")
        b = ShardedStore(tmp_path / "d", shard="b")
        a.append(make_trial(x=1))
        b.append(make_trial(x=2))
        with a.path.open("a") as fh:
            fh.write('{"torn')  # host A crashed mid-append
        assert [t.point["x"] for t in a.load()] == [1, 2]
        assert len(a) == 2  # complete lines only

    def test_duplicate_identities_deduplicate(self, tmp_path):
        a = ShardedStore(tmp_path / "d", shard="a")
        b = ShardedStore(tmp_path / "d", shard="b")
        trial = make_trial()
        a.append(trial)
        b.append(trial)  # overlapping slice run twice
        assert len(a.load()) == 1
        assert len(a) == 2  # raw line count is the honest write tally

    def test_clear_removes_all_shards(self, tmp_path):
        a = ShardedStore(tmp_path / "d", shard="a")
        ShardedStore(tmp_path / "d", shard="b").append(make_trial())
        a.append(make_trial(x=2))
        a.clear()
        assert a.load() == []
        assert not (tmp_path / "d").exists()
        a.clear()  # idempotent

    def test_default_shard_label_is_process_unique(self, tmp_path):
        store = ShardedStore(tmp_path / "d")
        store.append(make_trial())
        assert store.path.name.startswith("shard-")


class TestResumeAcrossBackends:
    """Every backend powers resume: partial run + rerun == full run."""

    @pytest.mark.parametrize("backend", ["jsonl", "sharded", "memory"])
    def test_partial_then_complete_matches_reference(self, tmp_path, backend):
        store = make_store(backend, tmp_path / backend)
        grid = ParameterGrid(x=[1, 2])
        calls = []

        def fn(point, seed):
            calls.append(1)
            return mapping_trial(point, seed)

        runner = TrialRunner(fn, master_seed=3, store=store)
        runner.run(grid, trials=2)
        assert len(calls) == 4
        full = runner.run(grid, trials=4)
        assert len(calls) == 8  # only the 4 new trials executed
        reference = TrialRunner(mapping_trial, master_seed=3).run(
            grid, trials=4)
        assert [t.canonical_json() for t in full] == \
            [t.canonical_json() for t in reference]

    def test_load_canonical_sorts_by_key(self, tmp_path):
        store = JsonlStore(tmp_path / "t.jsonl")
        store.append(make_trial(x=2, index=0))
        store.append(make_trial(x=1, index=1))
        store.append(make_trial(x=1, index=0))
        assert [(t.point["x"], t.trial_index)
                for t in store.load_canonical()] == [(1, 0), (1, 1), (2, 0)]
