"""Tests for the sweep observability layer (repro.harness.metrics)."""

import json

import pytest

from repro.harness import (
    METRICS_SCHEMA_VERSION,
    JsonlStore,
    MemoryStore,
    MetricsCollector,
    ParallelTrialRunner,
    ShardedStore,
    Trial,
    TrialRunner,
    validate_metrics_payload,
)


def steps_fn(point, seed):
    """Deterministic picklable trial fn: steps from (point, seed)."""
    return {"success": seed % 5 != 0, "steps": float(point["n"] + seed % 97)}


def failing_fn(point, seed):
    return {"success": False, "steps": float(seed % 13)}


def batch_steps_fn(point, seeds):
    return [steps_fn(point, seed) for seed in seeds]


class FakeClock:
    """A manual clock so sampling cadence is deterministic."""

    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class TestCollectorCore:
    def _trial(self, success=True, steps=10.0, elapsed=0.01, n=8):
        return Trial(point={"n": n}, trial_index=0, seed=1, success=success,
                     metrics={"steps": steps}, elapsed_s=elapsed)

    def test_sampling_follows_wall_clock_interval(self):
        clock = FakeClock()
        collector = MetricsCollector(sample_interval_s=1.0, clock=clock)
        collector.begin(total=10, pending=10)
        for _ in range(4):       # 4 events in the first interval: no sample
            clock.tick(0.2)
            collector.record_trial(self._trial())
        assert collector.samples == []
        clock.tick(0.3)          # crosses 1.0 s -> one sample, 5 events
        collector.record_trial(self._trial())
        assert len(collector.samples) == 1
        sample = collector.samples[0]
        assert sample["t_s"] == pytest.approx(1.1)
        assert sample["trials_per_sec"] == pytest.approx(5 / 1.1)
        assert sample["pending"] == 5
        clock.tick(2.0)          # finish() takes a closing sample
        collector.record_trial(self._trial())
        collector.finish()
        assert len(collector.samples) == 2
        assert collector.samples[-1]["pending"] == 4

    def test_rejects_bad_interval_and_double_begin(self):
        with pytest.raises(ValueError):
            MetricsCollector(sample_interval_s=0)
        collector = MetricsCollector()
        collector.begin(total=1, pending=1)
        with pytest.raises(RuntimeError):
            collector.begin(total=1, pending=1)

    def test_latency_percentiles_fresh_only(self):
        clock = FakeClock()
        collector = MetricsCollector(clock=clock)
        collector.begin(total=3, pending=2)
        collector.record_trial(self._trial(elapsed=0.5), resumed=True)
        collector.record_trial(self._trial(elapsed=0.010))
        collector.record_trial(self._trial(elapsed=0.030))
        timing = collector.payload()["timing"]
        # The resumed trial's stored elapsed never enters the pool.
        assert timing["latency_p50_s"] == pytest.approx(0.020)
        assert timing["latency_max_s"] == pytest.approx(0.030)
        assert timing["latency_p99_s"] <= 0.030

    def test_report_is_human_readable(self):
        collector = MetricsCollector(clock=FakeClock())
        collector.begin(total=2, pending=2)
        collector.record_trial(self._trial(), batch_size=4)
        collector.record_trial(self._trial(success=False), batch_size=4)
        text = collector.report({"algorithm": "dra"})
        assert "== sweep metrics (schema v1) ==" in text
        assert "trials      2 (fresh 2, resumed 0, failures 1)" in text
        assert "success     50.0% overall" in text
        assert "mean occupancy 4" in text
        assert "n=8" in text


class TestEdgeCases:
    def test_empty_sweep(self):
        collector = MetricsCollector()
        out = TrialRunner(steps_fn, metrics=collector).run([], trials=3)
        assert out == []
        payload = collector.payload()
        assert payload["kpis"] == {"trials": 0, "fresh": 0, "resumed": 0,
                                   "success_rate": 0.0, "per_point": {}}
        assert payload["timing"]["latency_p99_s"] is None
        assert collector.report()  # renders without data

    def test_all_failures_point(self):
        collector = MetricsCollector()
        TrialRunner(failing_fn, metrics=collector).run([{"n": 8}], trials=6)
        payload = collector.payload()
        point = payload["kpis"]["per_point"]["n=8"]
        assert point["success_rate"] == 0.0
        assert point["successes"] == 0
        # Steps percentiles and latency still describe the failures.
        assert point["steps_p90"] is not None
        assert payload["timing"]["latency_p99_s"] is not None

    def test_resume_only_run(self, tmp_path):
        store = JsonlStore(tmp_path / "sweep.jsonl")
        points = [{"n": 8}, {"n": 12}]
        TrialRunner(steps_fn, master_seed=3, store=store).run(points, trials=4)
        collector = MetricsCollector()
        out = TrialRunner(steps_fn, master_seed=3, store=store,
                          metrics=collector).run(points, trials=4)
        payload = collector.payload()
        assert payload["kpis"]["trials"] == len(out) == 8
        assert payload["kpis"]["fresh"] == 0
        assert payload["kpis"]["resumed"] == 8
        # No fresh trials -> no latency distribution, zero fresh rate.
        assert payload["timing"]["latency_p50_s"] is None
        assert payload["events"]["batch_occupancy_mean"] is None
        # Seed-derived KPIs match a fresh metered run of the same tree
        # (fresh/resumed counts describe the path taken, so they differ).
        fresh = MetricsCollector()
        TrialRunner(steps_fn, master_seed=3, metrics=fresh).run(points,
                                                                trials=4)
        fresh_kpis = fresh.payload()["kpis"]
        assert payload["kpis"]["per_point"] == fresh_kpis["per_point"]
        assert payload["kpis"]["success_rate"] == fresh_kpis["success_rate"]

    def test_schema_round_trip(self):
        collector = MetricsCollector()
        TrialRunner(steps_fn, metrics=collector).run([{"n": 8}], trials=3)
        payload = collector.payload({"algorithm": "x"})
        decoded = json.loads(json.dumps(payload))
        assert validate_metrics_payload(decoded) == payload
        assert decoded["schema_version"] == METRICS_SCHEMA_VERSION

    def test_validation_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            validate_metrics_payload([])
        with pytest.raises(ValueError, match="schema tag"):
            validate_metrics_payload({"schema": "something-else"})
        collector = MetricsCollector()
        payload = collector.payload()
        stale = dict(payload, schema_version=METRICS_SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="unsupported metrics schema"):
            validate_metrics_payload(stale)
        torn = {k: v for k, v in payload.items() if k != "kpis"}
        with pytest.raises(ValueError, match="missing sections"):
            validate_metrics_payload(torn)


class TestRunnerIntegration:
    POINTS = [{"n": 8}, {"n": 12}]

    def test_serial_and_parallel_kpis_identical(self):
        serial = MetricsCollector()
        TrialRunner(steps_fn, master_seed=11,
                    metrics=serial).run(self.POINTS, trials=6)
        for schedule in ("ordered", "work-stealing"):
            parallel = MetricsCollector()
            ParallelTrialRunner(steps_fn, master_seed=11, jobs=2,
                                schedule=schedule,
                                metrics=parallel).run(self.POINTS, trials=6)
            assert (parallel.payload()["kpis"]
                    == serial.payload()["kpis"]), schedule

    def test_parallel_pool_annotation(self):
        collector = MetricsCollector()
        ParallelTrialRunner(steps_fn, master_seed=1, jobs=2,
                            schedule="work-stealing",
                            metrics=collector).run(self.POINTS, trials=4)
        run = collector.payload()["run"]
        assert run["scheduler"] == "work-stealing"
        assert run["workers"] == 2
        assert run["chunksize"] >= 1

    def test_metrics_composes_with_progress(self):
        seen = []
        collector = MetricsCollector()
        TrialRunner(steps_fn, metrics=collector).run(
            self.POINTS, trials=3, progress=seen.append)
        assert len(seen) == 6
        assert collector.payload()["kpis"]["trials"] == 6

    def test_batched_events_record_group_sizes(self):
        collector = MetricsCollector()
        TrialRunner(steps_fn, batch_fn=batch_steps_fn, batch_size=4,
                    metrics=collector).run(self.POINTS, trials=6)
        events = collector.payload()["events"]
        assert events["batch_occupancy_max"] == 4
        # 6 trials per point -> groups of 4 + 2 at each point.
        assert events["batch_occupancy_mean"] == pytest.approx(
            (4 * 4 + 2 * 2) * 2 / 12)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_batched_resume_counts_each_trial_once(self, tmp_path, jobs):
        """Resumed trials report through the metrics event path exactly
        once in the batched paths — the same contract as progress."""
        store = JsonlStore(tmp_path / f"sweep{jobs}.jsonl")
        first = TrialRunner(steps_fn, master_seed=2, store=store,
                            batch_fn=batch_steps_fn, batch_size=3)
        kept = first.run(self.POINTS, trials=5)[::2]
        store.clear()
        for trial in kept:  # a gappy store: resume interleaves batches
            store.append(trial)
        collector = MetricsCollector()
        seen = []
        cls = ParallelTrialRunner if jobs > 1 else TrialRunner
        kwargs = {"jobs": jobs} if jobs > 1 else {}
        out = cls(steps_fn, master_seed=2, store=store,
                  batch_fn=batch_steps_fn, batch_size=3,
                  metrics=collector, **kwargs).run(
            self.POINTS, trials=5, progress=seen.append)
        payload = collector.payload()
        assert payload["kpis"]["trials"] == len(out) == len(seen) == 10
        assert payload["kpis"]["resumed"] == len(kept) == 5
        assert payload["kpis"]["fresh"] == 5
        # And the seed-derived KPIs still match an unresumed serial run.
        fresh = MetricsCollector()
        TrialRunner(steps_fn, master_seed=2, metrics=fresh).run(
            self.POINTS, trials=5)
        fresh_kpis = fresh.payload()["kpis"]
        assert payload["kpis"]["per_point"] == fresh_kpis["per_point"]
        assert payload["kpis"]["success_rate"] == fresh_kpis["success_rate"]


class TestStoreSidecar:
    def _payload(self):
        collector = MetricsCollector()
        TrialRunner(steps_fn, metrics=collector).run([{"n": 8}], trials=2)
        return collector.payload()

    def test_jsonl_sidecar_path_and_round_trip(self, tmp_path):
        store = JsonlStore(tmp_path / "sweep.jsonl")
        assert store.metrics_path() == tmp_path / "sweep.metrics.json"
        payload = self._payload()
        written = store.write_metrics(payload)
        assert written == store.metrics_path() and written.exists()
        assert store.load_metrics() == json.loads(json.dumps(payload))
        # The sidecar never pollutes the trial record stream.
        assert store.load() == []

    def test_sharded_sidecar_is_per_writer(self, tmp_path):
        store = ShardedStore(tmp_path / "shards", shard="0of2")
        assert store.metrics_path() == \
            tmp_path / "shards" / "shard-0of2.metrics.json"
        store.write_metrics(self._payload())
        store.append(Trial(point={"n": 8}, trial_index=0, seed=1,
                           success=True))
        # shard_paths (the record merge) must not pick the sidecar up.
        assert store.shard_paths() == [tmp_path / "shards"
                                      / "shard-0of2.jsonl"]
        assert len(store.load()) == 1

    def test_memory_store_has_no_sidecar(self):
        store = MemoryStore()
        assert store.metrics_path() is None
        assert store.write_metrics(self._payload()) is None
        assert store.load_metrics() is None

    def test_missing_sidecar_loads_none(self, tmp_path):
        assert JsonlStore(tmp_path / "sweep.jsonl").load_metrics() is None
