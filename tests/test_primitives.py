"""Tests for the distributed primitives: flood-min, BFS tree, barrier."""

from repro.congest import Network, Protocol
from repro.graphs import Graph, bfs_distances, gnp_random_graph
from repro.primitives import BfsTree, FloodMin, SubMachineHost
from repro.primitives.barrier import Barrier

from tests.conftest import path_graph, ring


class _Host(Protocol, SubMachineHost):
    """Minimal host driving one machine factory through the engine."""

    def __init__(self, node_id, factory):
        SubMachineHost.__init__(self)
        self.node_id = node_id
        self.factory = factory
        self.machine = None

    def on_start(self, ctx):
        self.machine = self.factory(ctx)
        self.activate(ctx, self.machine)

    def on_round(self, ctx, inbox):
        self.dispatch(ctx, inbox)
        if self.machine.done and not ctx.halted:
            ctx.halt()


def run_machines(graph, factory, *, seed=0, max_rounds=500):
    net = Network(graph, lambda v: _Host(v, factory), seed=seed)
    net.run(max_rounds=max_rounds)
    return [p.machine for p in net.protocols]


class TestFloodMin:
    def test_elects_global_minimum(self):
        g = ring(9)
        machines = run_machines(
            g, lambda ctx: FloodMin("lm", ctx.neighbors, budget=12))
        assert all(m.leader == 0 for m in machines)
        assert [m.is_leader for m in machines].count(True) == 1

    def test_budget_too_small_splits_election(self):
        g = path_graph(10)
        machines = run_machines(
            g, lambda ctx: FloodMin("lm", ctx.neighbors, budget=2))
        # The far end cannot have heard of node 0 in 2 rounds.
        assert machines[9].leader != 0

    def test_empty_peer_set_keeps_own_leader(self):
        g = ring(6)
        machines = run_machines(g, lambda ctx: FloodMin("lm", [], budget=4))
        assert all(m.leader == i for i, m in enumerate(machines))
        assert all(m.is_leader for m in machines)

    def test_restricted_peer_set_limits_propagation(self):
        g = ring(6)
        # Peers = even-id neighbours only.  On a 6-ring every even node
        # has two odd neighbours (empty peer list -> never sends, but
        # still *hears*), and every odd node has two even peers.  Ids
        # therefore flow exactly one hop, odd -> even, and stop:
        # evens adopt min(self, odd neighbours); odds hear nothing.
        machines = run_machines(
            g,
            lambda ctx: FloodMin(
                "lm", [v for v in ctx.neighbors if v % 2 == 0], budget=4),
        )
        expected = {0: 0, 1: 1, 2: 1, 3: 3, 4: 3, 5: 5}
        assert {i: m.leader for i, m in enumerate(machines)} == expected


class TestBfsTree:
    def _build(self, graph, root=0, seed=0):
        machines = run_machines(
            graph,
            lambda ctx: BfsTree(
                "bt", ctx.neighbors, is_root=ctx.node_id == root,
                deadline=400),
            seed=seed,
        )
        return machines

    def test_depths_match_true_bfs(self):
        g = gnp_random_graph(60, 0.12, seed=3)
        machines = self._build(g)
        truth = bfs_distances(g, 0)
        for v, m in enumerate(machines):
            assert m.done and not m.failed
            assert m.depth == truth[v]

    def test_parent_child_consistency(self):
        g = gnp_random_graph(50, 0.15, seed=5)
        machines = self._build(g)
        for v, m in enumerate(machines):
            for c in m.children:
                assert machines[c].parent == v
            if m.parent >= 0:
                assert v in machines[m.parent].children

    def test_size_and_depth_broadcast(self):
        g = ring(12)
        machines = self._build(g)
        assert all(m.size == 12 for m in machines)
        assert all(m.tree_depth == 6 for m in machines)

    def test_spanning(self):
        g = gnp_random_graph(80, 0.1, seed=9)
        machines = self._build(g)
        roots = sum(1 for m in machines if m.parent < 0)
        assert roots == 1
        assert sum(len(m.children) for m in machines) == 79

    def test_max_load_aggregated(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])  # star
        machines = self._build(g)
        assert all(m.max_load == 5 for m in machines)

    def test_disconnected_participants_fail(self):
        g = Graph(4, [(0, 1), (2, 3)])
        machines = run_machines(
            g,
            lambda ctx: BfsTree("bt", ctx.neighbors,
                                is_root=ctx.node_id == 0, deadline=30),
        )
        assert machines[0].done and not machines[0].failed
        assert machines[2].failed and machines[3].failed

    def test_min_id_parent_choice(self):
        # Node 3 is adjacent to both 1 and 2 at depth 1: must pick 1.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        machines = self._build(g)
        assert machines[3].parent == 1


class TestBarrier:
    def test_barrier_waits_for_all(self):
        g = ring(8)
        bfs = run_machines(
            g, lambda ctx: BfsTree("bt", ctx.neighbors,
                                   is_root=ctx.node_id == 0, deadline=200))

        class BarrierHost(Protocol, SubMachineHost):
            done_round = {}

            def __init__(self, v):
                SubMachineHost.__init__(self)
                self.v = v
                self.machine = None

            def on_start(self, ctx):
                tree = bfs[ctx.node_id]
                self.machine = Barrier("g1", parent=tree.parent,
                                       children=tree.children)
                self.activate(ctx, self.machine)
                # Node 5 is slow to become ready.
                ctx.request_wake(20 if ctx.node_id == 5 else 2)

            def on_round(self, ctx, inbox):
                self.dispatch(ctx, inbox)
                if not self.machine._ready and ctx.round_index >= (
                        20 if ctx.node_id == 5 else 2):
                    self.machine.mark_ready(ctx)
                if self.machine.done and not ctx.halted:
                    BarrierHost.done_round[ctx.node_id] = ctx.round_index
                    ctx.halt()

        Network(g, lambda v: BarrierHost(v)).run(max_rounds=200)
        assert len(BarrierHost.done_round) == 8
        # Nobody passed the barrier before the slow node was ready.
        assert min(BarrierHost.done_round.values()) >= 20
