"""Tests for DHC2 (Algorithm 3): partitioning, merging, end-to-end."""

import math

import pytest

from repro.core import run_dhc2
from repro.core.dhc2 import default_color_count
from repro.core.phase1 import color_at_level, colors_at_level, merge_levels
import repro
from repro.graphs import gnp_random_graph
from repro.verify import is_hamiltonian_cycle


def dhc2_graph(n, k, c=8.0, seed=0):
    """G(n,p) dense enough that each of the k partitions is Hamiltonian."""
    s = max(3, n // k)
    p = min(1.0, c * math.log(s) / s)
    return gnp_random_graph(n, p, seed=seed)


class TestColorArithmetic:
    def test_color_halves_per_level(self):
        assert color_at_level(5, 1) == 5
        assert color_at_level(5, 2) == 3
        assert color_at_level(5, 3) == 2
        assert color_at_level(8, 4) == 1

    def test_colors_at_level(self):
        assert colors_at_level(8, 1) == 8
        assert colors_at_level(8, 2) == 4
        assert colors_at_level(8, 4) == 1

    def test_merge_levels(self):
        assert merge_levels(1) == 0
        assert merge_levels(2) == 1
        assert merge_levels(8) == 3
        assert merge_levels(9) == 4

    def test_pairing_is_collision_free(self):
        """Distinct level-l colours map to distinct level-(l+1) colours
        unless they are a merge pair."""
        for k in range(1, 40):
            for level in range(1, merge_levels(k) + 1):
                remaining = colors_at_level(k, level)
                succ = {}
                for c in range(1, remaining + 1):
                    succ.setdefault(-(-c // 2), []).append(c)
                for group in succ.values():
                    assert len(group) <= 2

    def test_default_color_count(self):
        assert default_color_count(256, 0.5) == 16
        assert default_color_count(1000, 1.0) == 1
        with pytest.raises(ValueError):
            default_color_count(100, 1.5)


class TestDhc2EndToEnd:
    def test_produces_verified_cycle(self):
        g = dhc2_graph(120, 4, seed=2)
        res = run_dhc2(g, k=4, seed=3)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_multiple_merge_levels(self):
        g = dhc2_graph(240, 8, seed=5)
        res = run_dhc2(g, k=8, seed=6)
        assert res.success
        assert res.detail["levels"] == 3

    def test_odd_color_count_sits_out(self):
        g = dhc2_graph(150, 5, seed=7)
        res = run_dhc2(g, k=5, seed=8)
        assert res.success

    def test_single_partition_reduces_to_dra(self):
        g = dhc2_graph(60, 1, seed=9)
        res = run_dhc2(g, k=1, seed=10)
        assert res.success
        assert res.detail["levels"] == 0

    def test_deterministic_given_seed(self):
        g = dhc2_graph(120, 4, seed=11)
        assert run_dhc2(g, k=4, seed=1).cycle == run_dhc2(g, k=4, seed=1).cycle

    def test_sparse_graph_fails_honestly(self):
        # Far below the partition threshold: phase 1 cannot succeed.
        g = gnp_random_graph(120, 0.02, seed=13)
        res = run_dhc2(g, k=4, seed=14)
        assert not res.success
        assert res.cycle is None

    def test_memory_balance(self):
        """Fully-distributed: per-node state is degree-scaled (o(n) in
        the paper's sparse regimes) and balanced across nodes."""
        g = dhc2_graph(160, 4, seed=15)
        res = run_dhc2(g, k=4, seed=16, audit_memory=True)
        assert res.success
        words = res.detail["state_words"]
        max_deg = int(g.degrees().max())
        assert max(words) < 100 * (max_deg + 50)
        assert max(words) < 4 * (sum(words) / len(words))  # balanced


class TestDhc2FastEngine:
    @pytest.mark.parametrize("n,k,seed", [(120, 4, 2), (200, 4, 4), (240, 8, 5)])
    def test_cycles_identical_across_engines(self, n, k, seed):
        g = dhc2_graph(n, k, seed=seed)
        slow = run_dhc2(g, k=k, seed=seed + 1)
        fast = repro.run(g, "dhc2", engine="fast", k=k, seed=seed + 1)
        assert slow.success and fast.success
        assert slow.cycle == fast.cycle

    def test_round_estimates_same_ballpark(self):
        g = dhc2_graph(200, 4, seed=4)
        slow = run_dhc2(g, k=4, seed=5)
        fast = repro.run(g, "dhc2", engine="fast", k=4, seed=5)
        ratio = slow.rounds / fast.rounds
        assert 0.2 < ratio < 5.0

    def test_fast_engine_scales(self):
        n = 1024
        p = min(1.0, 6 * math.log(n) / math.sqrt(n))
        g = gnp_random_graph(n, p, seed=9)
        res = repro.run(g, "dhc2", engine="fast", delta=0.5, seed=10)
        assert res.success
        assert is_hamiltonian_cycle(g, res.cycle)

    def test_fast_failure_reported(self):
        g = gnp_random_graph(100, 0.02, seed=3)
        res = repro.run(g, "dhc2", engine="fast", k=4, seed=4)
        assert not res.success
        assert "fail" in res.detail
