"""The native k-machine engine vs the Conversion-Theorem oracle.

The contract (ISSUE 5 / docs/ARCHITECTURE.md):

* ``repro.run(g, alg, engine="kmachine", ...)`` works for every
  ``kmachine_convertible`` algorithm, threading ``k_machines``,
  ``link_words`` and ``partition_seed``;
* on a shared seed tree the native engine reproduces the converted
  simulator's ``cycle`` exactly (the converted run itself never
  perturbs the protocol, so this is simultaneously congest parity);
* the native ``kmachine_rounds`` respects the Conversion Theorem's
  bound and falls as machines are added (the ``~1/k`` shape);
* the RVP is drawn from the same stream as the converted path, so both
  engines place every node identically for a given seed.

The registry-wide enforcement lives in
``tests/test_engine_parity.py::TestKmachineOracleGate``; this module
covers the behavioural surface in depth for DRA (the exactly-modelled
driver) and spot-checks the structural ones.
"""

import math

import numpy as np
import pytest

import repro
from repro.engines.kmachine_engine import DEFAULT_K_MACHINES
from repro.engines.registry import REGISTRY
from repro.graphs import gnp_random_graph, paper_probability
from repro.kmachine import (
    LinkLedger,
    VertexPartition,
    conversion_round_bound,
    run_converted_hc,
)

CONVERTIBLE = ("dra", "dhc1", "dhc2", "turau")


def _dra_graph(n=96, seed=3):
    return gnp_random_graph(n, paper_probability(n, 1.0, 8.0), seed=seed)


class TestRegistrySurface:
    def test_every_convertible_algorithm_has_a_kmachine_engine(self):
        for algorithm in REGISTRY.convertible_algorithms():
            spec = REGISTRY.get(algorithm, "kmachine")
            assert {"k_machines", "link_words",
                    "partition_seed"} <= spec.supported_kwargs

    def test_issue_call_shape(self):
        # The acceptance criterion verbatim: k aliases k_machines for DRA.
        g = _dra_graph()
        result = repro.run(g, "dra", engine="kmachine", k=8, seed=1)
        assert result.engine == "kmachine"
        assert result.detail["k_machines"] == 8

    def test_defaults_applied(self):
        result = repro.run(_dra_graph(48), "dra", engine="kmachine", seed=1)
        assert result.detail["k_machines"] == DEFAULT_K_MACHINES

    def test_auto_resolution_steers_kmachine_kwargs(self):
        spec = REGISTRY.resolve("dra", "auto", require={"k_machines": 4})
        assert spec.engine == "kmachine"
        # ...but a plain run still lands on the fast engine.
        assert REGISTRY.resolve("dra", "auto").engine == "fast"


class TestDraNativeParity:
    """DRA: the exactly-modelled driver, held to the oracle tightly."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_cycle_rounds_and_words_match_converted(self, k):
        g = _dra_graph()
        for seed in (1, 4):
            native = repro.run(g, "dra", engine="kmachine", seed=seed,
                               k_machines=k)
            converted, km = run_converted_hc(g, algorithm="dra",
                                             k_machines=k, seed=seed)
            assert native.success and converted.success
            assert native.cycle == converted.cycle
            assert native.rounds == converted.rounds
            assert native.steps == converted.steps
            summary = native.detail["kmachine"]
            assert summary["congest_rounds"] == km.congest_rounds
            # Setup floods and walk progress are modelled message-exactly;
            # only renumbering floods use the root-based profile.
            assert summary["cross_words"] == km.cross_words
            assert summary["local_words"] == km.local_words
            assert native.detail["kmachine_rounds"] == pytest.approx(
                km.kmachine_rounds, rel=0.05)

    def test_single_machine_rounds_equal_congest(self):
        g = _dra_graph(64)
        native = repro.run(g, "dra", engine="kmachine", seed=2, k_machines=1)
        detail = native.detail["kmachine"]
        assert detail["cross_words"] == 0
        assert native.detail["kmachine_rounds"] == native.rounds

    def test_rounds_fall_as_machines_are_added(self):
        g = _dra_graph()
        series = [repro.run(g, "dra", engine="kmachine", seed=3,
                            k_machines=k).detail["kmachine_rounds"]
                  for k in (2, 4, 8, 16)]
        assert series == sorted(series, reverse=True)
        assert series[0] > 1.5 * series[-1]  # a real ~1/k shape, not noise

    def test_within_conversion_bound(self):
        g = _dra_graph()
        native = repro.run(g, "dra", engine="kmachine", seed=3, k_machines=4)
        delta_max = max(g.degree(v) for v in range(g.n))
        bound = conversion_round_bound(
            native.detail["kmachine"]["cross_words"]
            + native.detail["kmachine"]["local_words"],
            native.rounds, delta_max, k=4)
        assert native.detail["kmachine_rounds"] <= 20 * bound + 10 * native.rounds

    def test_link_words_inflate_rounds(self):
        g = _dra_graph(64)
        wide = repro.run(g, "dra", engine="kmachine", seed=2, k_machines=4,
                         link_words=32)
        narrow = repro.run(g, "dra", engine="kmachine", seed=2, k_machines=4,
                           link_words=1)
        assert narrow.cycle == wide.cycle  # cost model never touches decisions
        assert narrow.detail["kmachine_rounds"] > wide.detail["kmachine_rounds"]

    def test_failure_paths_replay(self):
        g = _dra_graph(64)
        native = repro.run(g, "dra", engine="kmachine", seed=3, k_machines=4,
                           step_budget=5)
        fast = repro.run(g, "dra", engine="fast", seed=3, step_budget=5)
        assert not native.success
        assert native.rounds == fast.rounds
        assert native.detail["fail_codes"] == fast.detail["fail_codes"]
        assert native.detail["kmachine_rounds"] >= 1

    def test_disconnected_graph_fails_cleanly(self):
        g = repro.Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        native = repro.run(g, "dra", engine="kmachine", seed=1, k_machines=2)
        assert not native.success
        assert native.detail["fail_codes"] == ["bfs-unreachable"]


class TestPartitionThreading:
    """The RVP stream is shared with the converted path and overridable."""

    def test_same_seed_same_partition_as_converted(self):
        # The converted path draws VertexPartition.random(n, k, seed=seed);
        # the native engine must use the identical stream.
        g = _dra_graph(64)
        seed, k = 7, 4
        expected = VertexPartition.random(g.n, k, seed=seed)
        ledger = LinkLedger(expected, 16)
        native = repro.run(g, "dra", engine="kmachine", seed=seed, k_machines=k)
        _converted, km = run_converted_hc(g, algorithm="dra", k_machines=k,
                                          seed=seed)
        # Identical partitions + exact traffic model => identical word split.
        assert native.detail["kmachine"]["cross_words"] == km.cross_words
        assert ledger.k == km.k

    def test_partition_seed_override_changes_costs_not_cycle(self):
        g = _dra_graph(64)
        base = repro.run(g, "dra", engine="kmachine", seed=3, k_machines=4)
        other = repro.run(g, "dra", engine="kmachine", seed=3, k_machines=4,
                          partition_seed=99)
        assert base.cycle == other.cycle
        assert (base.detail["kmachine"]["cross_words"]
                != other.detail["kmachine"]["cross_words"])


class TestStructuralDrivers:
    """DHC1/DHC2/Turau: cycle-exact, rounds within the oracle envelope."""

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("dhc2", {"delta": 0.5, "k": 4}),
        ("turau", {}),
    ])
    def test_cycle_parity_grid(self, algorithm, kwargs):
        n = 64
        p = (paper_probability(n, 0.5, 6.0) if algorithm == "dhc2"
             else min(1.0, 30 * math.log(n) / n))
        g = gnp_random_graph(n, p, seed=3)
        succeeded = 0
        for seed in (1, 3, 7):
            native = repro.run(g, algorithm, engine="kmachine", seed=seed,
                               k_machines=4, **kwargs)
            converted, km = run_converted_hc(
                g, algorithm=algorithm, k_machines=4, seed=seed, **kwargs)
            assert native.success == converted.success
            assert native.cycle == converted.cycle
            if native.success:
                succeeded += 1
                assert native.steps == converted.steps
        assert succeeded >= 2

    def test_dhc1_cycle_parity_grid(self):
        for n, gseed in ((64, 3), (100, 5)):
            p = min(1.0, 8.0 * math.log(n) / math.sqrt(n))
            g = gnp_random_graph(n, p, seed=gseed)
            for seed in (2, 9):
                native = repro.run(g, "dhc1", engine="kmachine", seed=seed,
                                   k_machines=4)
                converted, _km = run_converted_hc(
                    g, algorithm="dhc1", k_machines=4, seed=seed)
                assert native.success == converted.success
                assert native.cycle == converted.cycle
                if native.success:
                    assert native.steps == converted.steps

    def test_dhc2_rounds_match_fast_estimate(self):
        g = gnp_random_graph(96, paper_probability(96, 0.5, 6.0), seed=3)
        native = repro.run(g, "dhc2", engine="kmachine", seed=1, k=4,
                           k_machines=4, delta=0.5)
        fast = repro.run(g, "dhc2", engine="fast", seed=1, k=4, delta=0.5)
        assert native.rounds == fast.rounds

    def test_turau_rounds_match_fast_estimate(self):
        n = 64
        g = gnp_random_graph(n, min(1.0, 30 * math.log(n) / n), seed=3)
        native = repro.run(g, "turau", engine="kmachine", seed=1, k_machines=4)
        fast = repro.run(g, "turau", engine="fast", seed=1)
        assert native.rounds == fast.rounds
        assert native.detail["fail"] == fast.detail["fail"]

    def test_too_small_graph(self):
        g = repro.Graph(2, [(0, 1)])
        native = repro.run(g, "turau", engine="kmachine", seed=1, k_machines=2)
        assert not native.success
        assert native.detail["kmachine_rounds"] == 0


class TestLedgerInvariants:
    """Internal consistency of the machine-level accounting."""

    def test_word_totals_consistent(self):
        g = _dra_graph(64)
        native = repro.run(g, "dra", engine="kmachine", seed=5, k_machines=4)
        s = native.detail["kmachine"]
        assert s["cross_words"] >= 0 and s["local_words"] >= 0
        assert s["kmachine_rounds"] >= s["congest_rounds"]
        assert s["max_round_link_words"] <= s["cross_words"]

    def test_link_matrix_totals(self):
        part = VertexPartition(np.array([0, 0, 1, 1]), k=2)
        ledger = LinkLedger(part, 4)
        ledger.burst(np.array([0, 1, 2]), np.array([2, 0, 3]), 3)
        m = ledger.metrics
        assert m.cross_words == 3      # only 0->2 crosses; 1->0 and 2->3 are local
        assert m.local_words == 6
        assert int(m.link_words.sum()) == m.cross_words
        assert m.congest_rounds == 1
        assert m.kmachine_rounds == 1  # 3 words fit one W=4 round

    def test_quiet_floors_one_round_per_tick(self):
        ledger = LinkLedger(VertexPartition.round_robin(8, 4), 16)
        ledger.quiet(7)
        assert ledger.metrics.kmachine_rounds == 7
        assert ledger.metrics.congest_rounds == 7

    def test_bad_link_words_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkLedger(VertexPartition.round_robin(8, 4), 0)
