"""Unit tests for the Levy baseline's internal phases (repro.baselines.levy).

The end-to-end behaviour is covered in test_baselines; these pin the
mechanisms — disjoint path growth, rotation closure, Pósa endpoint
rotation, patch search — on hand-checkable inputs.
"""

import numpy as np

from repro.baselines.levy import (
    _close_into_cycle,
    _find_patch,
    _grow_disjoint_paths,
    _rotate_endpoint,
)
from repro.graphs.adjacency import Graph

from tests.conftest import complete, ring


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestDisjointPathGrowth:
    def test_paths_are_vertex_disjoint(self):
        g = complete(20)
        system, rounds = _grow_disjoint_paths(g, [0, 5, 10], _rng())
        all_nodes = [v for path in system.paths for v in path]
        assert len(all_nodes) == len(set(all_nodes))
        assert rounds >= 1

    def test_complete_graph_fully_covered(self):
        g = complete(18)
        system, _ = _grow_disjoint_paths(g, [0, 1], _rng(3))
        covered = {v for path in system.paths for v in path}
        assert covered == set(range(18))

    def test_paths_are_walks_in_the_graph(self):
        g = complete(16)
        system, _ = _grow_disjoint_paths(g, [0, 7], _rng(1))
        for path in system.paths:
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_isolated_seed_stays_singleton(self):
        # Node 5 is isolated: its path can never grow.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        system, _ = _grow_disjoint_paths(g, [0, 5], _rng())
        lengths = {path[0]: len(path) for path in system.paths}
        assert lengths[5] == 1

    def test_conflict_goes_to_smaller_path_id(self):
        # Star: both seeds 1 and 2 can only grow into the centre 0.
        g = Graph(3, [(0, 1), (0, 2)])
        system, _ = _grow_disjoint_paths(g, [1, 2], _rng())
        assert system.paths[0] == [1, 0]   # path 0 won the conflict
        assert system.paths[1] == [2]


class TestRotationClosure:
    def test_closes_a_ring(self):
        g = ring(8)
        cycle, steps, rounds = _close_into_cycle(
            g, list(range(8)), _rng(), step_budget=200)
        assert cycle is not None
        assert sorted(cycle) == list(range(8))
        assert steps >= 1
        assert rounds >= 1

    def test_complete_graph_closes_fast(self):
        g = complete(12)
        cycle, _steps, _rounds = _close_into_cycle(
            g, list(range(12)), _rng(5), step_budget=500)
        assert cycle is not None
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert g.has_edge(a, b)

    def test_too_short_path_fails(self):
        g = complete(5)
        assert _close_into_cycle(g, [0, 1], _rng(), step_budget=10)[0] is None

    def test_budget_exhaustion_fails_cleanly(self):
        g = ring(10)
        # A ring has exactly one closure; budget 1 cannot find it from a
        # cold start unless the closing edge is immediate.
        cycle, steps, _rounds = _close_into_cycle(
            g, list(range(10)), _rng(), step_budget=1)
        assert steps <= 1
        # (cycle may close in 1 step on a ring path since head 9 ~ 0.)
        if cycle is None:
            assert steps == 1


class TestEndpointRotation:
    def test_rotation_preserves_edges_and_nodes(self):
        g = complete(10)
        work = list(range(10))
        rotated = _rotate_endpoint(g, work, _rng(2))
        assert rotated is not None
        assert sorted(rotated) == sorted(work)
        for a, b in zip(rotated, rotated[1:]):
            assert g.has_edge(a, b)

    def test_no_fold_edge_returns_none(self):
        # A path graph: endpoints have no chord back into the path.
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert _rotate_endpoint(g, [0, 1, 2, 3], _rng()) is None

    def test_changes_an_endpoint(self):
        g = complete(8)
        work = list(range(8))
        rotated = _rotate_endpoint(g, work, _rng(7))
        assert rotated is not None
        assert (rotated[0], rotated[-1]) != (work[0], work[-1])


class TestPatchSearch:
    def test_finds_forward_patch(self):
        # Cycle 0-1-2-3; path 4-5 with 0~4 and 1~5.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (0, 4), (1, 5)])
        found = _find_patch(g, [0, 1, 2, 3], 4, 5)
        assert found == (0, False)

    def test_finds_reversed_patch(self):
        # Only 0~5 and 1~4 exist: path must insert tail-first.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (0, 5), (1, 4)])
        found = _find_patch(g, [0, 1, 2, 3], 4, 5)
        assert found == (0, True)

    def test_wraparound_edge_is_considered(self):
        # Patch only via the closing edge (3, 0).
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (3, 4), (0, 5)])
        found = _find_patch(g, [0, 1, 2, 3], 4, 5)
        assert found == (3, False)

    def test_no_patch_returns_none(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)])
        assert _find_patch(g, [0, 1, 2, 3], 4, 5) is None

    def test_singleton_patch_needs_both_endpoints(self):
        # Node 4 adjacent to 0 and 1 (cycle edge) -> patches as (0, False).
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
        assert _find_patch(g, [0, 1, 2, 3], 4, 4) == (0, False)
        # Adjacent to 0 only -> no patch.
        g2 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)])
        assert _find_patch(g2, [0, 1, 2, 3], 4, 4) is None
