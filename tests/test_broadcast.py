"""Tests for TreeBroadcast and Convergecast (repro.primitives.broadcast).

Each primitive is tested standalone on hand-built trees, then composed
with a real distributed BFS tree — the way the algorithms use them.
"""

import pytest

from repro.congest import Network, Protocol
from repro.graphs import gnp_random_graph
from repro.primitives import BfsTree, Convergecast, SubMachineHost, TreeBroadcast

from tests.conftest import path_graph, ring


class _TreeHost(Protocol, SubMachineHost):
    """Builds a BFS tree, then runs a follow-up machine over it.

    The follow-up starts one round after the BFS completes — its first
    sends must not share edges with the BFS commit wave (the same
    one-round gap the DRA protocol uses before its walk).
    """

    def __init__(self, node_id, followup_factory):
        SubMachineHost.__init__(self)
        self.node_id = node_id
        self.followup_factory = followup_factory
        self.bfs = None
        self.followup = None
        self._followup_at = -1

    def on_start(self, ctx):
        self.bfs = BfsTree("bt", ctx.neighbors, is_root=ctx.node_id == 0,
                           deadline=200)
        self.activate(ctx, self.bfs)

    def on_round(self, ctx, inbox):
        self.dispatch(ctx, inbox)
        if self.bfs.done and self.followup is None:
            assert not self.bfs.failed
            if self._followup_at < 0:
                self._followup_at = ctx.round_index + 1
                ctx.request_wake(self._followup_at)
            elif ctx.round_index >= self._followup_at:
                self.followup = self.followup_factory(ctx, self.bfs)
                self.activate(ctx, self.followup)
        if self.followup is not None and self.followup.done and not ctx.halted:
            ctx.halt()


def _run_over_tree(graph, followup_factory, *, seed=0, max_rounds=600):
    net = Network(graph, lambda v: _TreeHost(v, followup_factory), seed=seed)
    net.run(max_rounds=max_rounds)
    return [p.followup for p in net.protocols]


class TestTreeBroadcast:
    def test_every_node_receives_on_a_ring(self):
        machines = _run_over_tree(
            ring(12),
            lambda ctx, bfs: TreeBroadcast(
                "bc", parent=bfs.parent, children=bfs.children,
                payload=(7, 42) if bfs.parent < 0 else None),
        )
        assert all(m.value == (7, 42) for m in machines)

    def test_on_random_graph(self):
        g = gnp_random_graph(40, 0.2, seed=3)
        machines = _run_over_tree(
            g,
            lambda ctx, bfs: TreeBroadcast(
                "bc", parent=bfs.parent, children=bfs.children,
                payload=(9,) if bfs.parent < 0 else None),
            seed=3,
        )
        assert all(m.value == (9,) for m in machines)

    def test_root_must_have_payload(self):
        with pytest.raises(ValueError, match="payload"):
            TreeBroadcast("bc", parent=-1, children=[1], payload=None)

    def test_leaf_completes_without_children(self):
        # A two-node path: node 1 is a leaf; the broadcast reaches it in
        # one round.
        machines = _run_over_tree(
            path_graph(2),
            lambda ctx, bfs: TreeBroadcast(
                "bc", parent=bfs.parent, children=bfs.children,
                payload=(5,) if bfs.parent < 0 else None),
        )
        assert [m.value for m in machines] == [(5,), (5,)]


class TestConvergecast:
    def test_sum_counts_participants(self):
        machines = _run_over_tree(
            ring(10),
            lambda ctx, bfs: Convergecast(
                "cc", parent=bfs.parent, children=bfs.children,
                value=1, fold="sum"),
        )
        assert machines[0].aggregate == 10  # the root's total

    def test_min_finds_global_minimum(self):
        machines = _run_over_tree(
            ring(8),
            lambda ctx, bfs: Convergecast(
                "cc", parent=bfs.parent, children=bfs.children,
                value=100 + ctx.node_id if ctx.node_id != 5 else 3,
                fold="min"),
        )
        assert machines[0].aggregate == 3

    def test_max_on_random_graph(self):
        g = gnp_random_graph(30, 0.25, seed=1)
        machines = _run_over_tree(
            g,
            lambda ctx, bfs: Convergecast(
                "cc", parent=bfs.parent, children=bfs.children,
                value=ctx.node_id, fold="max"),
            seed=1,
        )
        assert machines[0].aggregate == 29

    def test_internal_nodes_hold_subtree_aggregates(self):
        machines = _run_over_tree(
            path_graph(5),
            lambda ctx, bfs: Convergecast(
                "cc", parent=bfs.parent, children=bfs.children,
                value=1, fold="sum"),
        )
        # On a path rooted at 0, node i's subtree is {i, ..., 4}.
        assert [m.aggregate for m in machines] == [5, 4, 3, 2, 1]

    def test_unknown_fold_rejected(self):
        with pytest.raises(ValueError, match="fold"):
            Convergecast("cc", parent=-1, children=[], value=0, fold="mean")


class TestComposition:
    def test_count_then_announce(self):
        """The classic pair: convergecast a count, broadcast it back."""

        class _Pipeline(Protocol, SubMachineHost):
            def __init__(self, node_id):
                SubMachineHost.__init__(self)
                self.node_id = node_id
                self.bfs = None
                self.count = None
                self.announce = None
                self.learned = None
                self._count_at = -1

            def on_start(self, ctx):
                self.bfs = BfsTree("bt", ctx.neighbors,
                                   is_root=ctx.node_id == 0, deadline=200)
                self.activate(ctx, self.bfs)

            def on_round(self, ctx, inbox):
                self.dispatch(ctx, inbox)
                if self.bfs.done and self.count is None:
                    # One-round gap after the BFS commit wave (edge reuse).
                    if self._count_at < 0:
                        self._count_at = ctx.round_index + 1
                        ctx.request_wake(self._count_at)
                        return
                    if ctx.round_index < self._count_at:
                        return
                    self.count = Convergecast(
                        "cc", parent=self.bfs.parent,
                        children=self.bfs.children, value=1, fold="sum")
                    self.activate(ctx, self.count)
                if (self.count is not None and self.count.done
                        and self.announce is None):
                    payload = ((self.count.aggregate,)
                               if self.bfs.parent < 0 else None)
                    self.announce = TreeBroadcast(
                        "an", parent=self.bfs.parent,
                        children=self.bfs.children, payload=payload)
                    self.activate(ctx, self.announce)
                if self.announce is not None and self.announce.done:
                    self.learned = self.announce.value[0]
                    if not ctx.halted:
                        ctx.halt()

        g = gnp_random_graph(25, 0.3, seed=2)
        net = Network(g, _Pipeline, seed=2)
        net.run(max_rounds=600)
        assert all(p.learned == 25 for p in net.protocols)
