"""Tests for the k-machine model subsystem (repro.kmachine).

Covers: the random-vertex-partition object, exact link accounting on a
hand-checkable protocol, invariance of the converted protocol's output,
and the Conversion-Theorem bound formula.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.message import Message
from repro.congest.node import Context, Protocol
from repro.core import run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.graphs.adjacency import Graph
from repro.kmachine import (
    VertexPartition,
    conversion_round_bound,
    run_converted,
    run_converted_hc,
)


# ---------------------------------------------------------------------------
# VertexPartition
# ---------------------------------------------------------------------------


class TestVertexPartition:
    def test_random_assigns_every_node(self):
        part = VertexPartition.random(100, k=4, seed=1)
        assert part.n == 100
        assert part.k == 4
        assert sorted(v for m in range(4) for v in part.hosted(m)) == list(range(100))

    def test_random_is_deterministic_per_seed(self):
        a = VertexPartition.random(64, k=8, seed=5)
        b = VertexPartition.random(64, k=8, seed=5)
        c = VertexPartition.random(64, k=8, seed=6)
        assert np.array_equal(a.machine_of, b.machine_of)
        assert not np.array_equal(a.machine_of, c.machine_of)

    def test_round_robin_is_perfectly_balanced(self):
        part = VertexPartition.round_robin(100, k=4)
        assert part.loads().tolist() == [25, 25, 25, 25]
        assert part.load_imbalance() == 1.0

    def test_loads_sum_to_n(self):
        part = VertexPartition.random(257, k=7, seed=0)
        assert int(part.loads().sum()) == 257

    def test_rvp_imbalance_is_modest(self):
        # Lemma 4.1 of [16]: O~(n/k) nodes per machine whp.  At n=4096,
        # k=8 the expected load is 512; a 1.5x cap is very generous.
        part = VertexPartition.random(4096, k=8, seed=3)
        assert part.load_imbalance() < 1.5

    def test_link_and_crosses(self):
        part = VertexPartition(np.array([0, 0, 1, 2]), k=3)
        assert not part.crosses(0, 1)
        assert part.link(0, 1) is None
        assert part.crosses(1, 2)
        assert part.link(2, 1) == (0, 1)
        assert part.link(3, 2) == (1, 2)

    def test_rejects_bad_assignment(self):
        with pytest.raises(ValueError):
            VertexPartition(np.array([0, 3]), k=2)
        with pytest.raises(ValueError):
            VertexPartition(np.array([0, 1]), k=0)
        with pytest.raises(ValueError):
            VertexPartition(np.array([[0], [1]]), k=2)

    def test_machine_lookup_matches_array(self):
        part = VertexPartition.random(32, k=4, seed=9)
        for v in range(32):
            assert part.machine(v) == int(part.machine_of[v])

    @given(n=st.integers(1, 200), k=st.integers(1, 16), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_partition_properties_hold(self, n, k, seed):
        part = VertexPartition.random(n, k, seed=seed)
        loads = part.loads()
        assert loads.sum() == n
        assert len(loads) == k
        assert part.load_imbalance() >= 1.0 or n == 0


class TestPartitionEdgeCases:
    """The corners the native k-machine engine actually hits."""

    def test_k_equals_one_everything_local(self):
        part = VertexPartition.random(16, k=1, seed=0)
        assert part.loads().tolist() == [16]
        assert part.load_imbalance() == 1.0
        for u in range(16):
            assert part.machine(u) == 0
        assert part.link(0, 15) is None and not part.crosses(0, 15)

    def test_k_exceeding_n_leaves_machines_empty(self):
        part = VertexPartition.random(4, k=16, seed=1)
        loads = part.loads()
        assert loads.sum() == 4 and len(loads) == 16
        empty = [m for m in range(16) if not part.hosted(m)]
        assert len(empty) >= 12  # pigeonhole: at most n machines occupied
        for m in empty:
            assert loads[m] == 0

    def test_empty_machine_hosted_is_empty_list(self):
        part = VertexPartition(np.array([0, 0, 2, 2]), k=3)
        assert part.hosted(1) == []
        assert part.loads().tolist() == [2, 0, 2]
        # An empty machine still has well-defined links.
        assert part.link(0, 2) == (0, 2)

    def test_zero_nodes_partition(self):
        part = VertexPartition(np.array([], dtype=np.int64), k=3)
        assert part.n == 0
        assert part.loads().tolist() == [0, 0, 0]
        assert part.load_imbalance() == 1.0

    def test_rvp_deterministic_across_both_engines(self):
        # The native engine and the converted simulator must draw the
        # *same* partition from a shared seed: the model's RVP is part
        # of the cost semantics, not an engine implementation detail.
        import repro
        from repro.graphs import gnp_random_graph as gnp

        graph = gnp(48, 0.6, seed=2)
        seed, k = 11, 4
        reference = VertexPartition.random(graph.n, k, seed=seed)
        converted = run_converted_hc(
            graph, algorithm="dra", k_machines=k, seed=seed)
        native = repro.run(graph, "dra", engine="kmachine", seed=seed,
                           k_machines=k)
        # run_converted returns its partition; compare assignments.
        result, metrics = converted
        assert metrics.k == reference.k
        assert native.detail["k_machines"] == reference.k
        # Identical partition + exact DRA traffic model => identical
        # cross/local word split on the same seed tree.
        assert native.detail["kmachine"]["cross_words"] == metrics.cross_words
        again = VertexPartition.random(graph.n, k, seed=seed)
        assert np.array_equal(reference.machine_of, again.machine_of)


# ---------------------------------------------------------------------------
# Exact accounting on a hand-checkable protocol
# ---------------------------------------------------------------------------


class _OneShotSend(Protocol):
    """Node 0 sends one 2-field message to each neighbour in round 1.

    Receivers halt on delivery; the run then ends by quiescence (the
    sender has nothing further scheduled).
    """

    def __init__(self, node_id: int):
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        if ctx.node_id == 0:
            for w in ctx.neighbors:
                ctx.send(w, "x", 7, 9)

    def on_round(self, ctx: Context, inbox: list[Message]) -> None:
        ctx.halt()


class TestLinkAccounting:
    def test_exact_words_on_a_star(self):
        # Star 0-{1,2,3}; machines: {0,1} on m0, {2} on m1, {3} on m2.
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        part = VertexPartition(np.array([0, 0, 1, 2]), k=3)
        res = run_converted(
            graph, _OneShotSend, k=3, partition=part, max_rounds=8, link_words=16)
        m = res.metrics
        # Message (kind, 7, 9) = 3 words (tag + 2 fields).
        assert m.local_words == 3       # 0 -> 1 stays on machine 0
        assert m.cross_words == 6       # 0 -> 2 and 0 -> 3 cross
        assert m.link_words[0, 1] == 3
        assert m.link_words[0, 2] == 3
        assert m.link_words[1, 2] == 0
        assert m.max_round_link_words == 3

    def test_single_machine_everything_local(self):
        graph = Graph(4, [(0, 1), (0, 2), (0, 3)])
        part = VertexPartition(np.zeros(4, dtype=np.int64), k=1)
        res = run_converted(
            graph, _OneShotSend, k=1, partition=part, max_rounds=8)
        assert res.metrics.cross_words == 0
        assert res.metrics.local_words == 9
        # Rounds still tick in lockstep: one k-machine round per CONGEST round.
        assert res.metrics.kmachine_rounds == res.metrics.congest_rounds

    def test_narrow_link_inflates_rounds(self):
        # All of node 0's traffic to machine 1 in one round; W=1 word
        # forces ceil(3 / 1) = 3 k-machine rounds for that CONGEST round.
        graph = Graph(2, [(0, 1)])
        part = VertexPartition(np.array([0, 1]), k=2)
        wide = run_converted(
            graph, _OneShotSend, k=2, partition=part, max_rounds=8, link_words=16)
        narrow = run_converted(
            graph, _OneShotSend, k=2, partition=part, max_rounds=8, link_words=1)
        assert narrow.metrics.congest_rounds == wide.metrics.congest_rounds
        assert narrow.metrics.kmachine_rounds > wide.metrics.kmachine_rounds

    def test_partition_shape_mismatch_rejected(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        part = VertexPartition(np.array([0, 1]), k=2)
        with pytest.raises(ValueError, match="does not match"):
            run_converted(graph, _OneShotSend, k=2, partition=part, max_rounds=4)

    def test_bad_link_bandwidth_rejected(self):
        graph = Graph(2, [(0, 1)])
        with pytest.raises(ValueError, match="bandwidth"):
            run_converted(graph, _OneShotSend, k=2, max_rounds=4, link_words=0)


# ---------------------------------------------------------------------------
# Conversion of the paper's algorithms
# ---------------------------------------------------------------------------


class TestConvertedAlgorithms:
    def _graph(self, n=48, seed=11):
        return gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=seed)

    def test_converted_dra_matches_native_output(self):
        graph = self._graph()
        native = run_dra(graph, seed=4)
        converted, metrics = run_converted_hc(
            graph, algorithm="dra", k_machines=4, seed=4)
        assert native.success and converted.success
        assert converted.cycle == native.cycle
        assert converted.rounds == native.rounds
        assert metrics.congest_rounds == native.rounds
        assert metrics.kmachine_rounds >= metrics.congest_rounds * 0  # sane

    def test_converted_dhc2_succeeds_and_accounts(self):
        graph = self._graph(n=64, seed=3)
        result, metrics = run_converted_hc(
            graph, algorithm="dhc2", k_machines=4, seed=3, delta=0.5)
        assert result.success
        assert metrics.cross_words > 0
        assert metrics.congest_rounds == result.rounds
        total_link = int(metrics.link_words.sum())
        assert total_link == metrics.cross_words

    def test_more_machines_less_local_traffic(self):
        graph = self._graph(n=64, seed=7)
        _, m2 = run_converted_hc(graph, algorithm="dra", k_machines=2, seed=7)
        _, m8 = run_converted_hc(graph, algorithm="dra", k_machines=8, seed=7)
        # With more machines a random edge is more likely to cross:
        # expected local share is 1/k.
        assert m8.local_words < m2.local_words
        assert m8.cross_words > m2.cross_words

    def test_unknown_algorithm_rejected(self):
        graph = self._graph(n=24)
        with pytest.raises(ValueError, match="not k-machine convertible"):
            run_converted_hc(graph, algorithm="no-such-algorithm", k_machines=2)

    def test_centralized_algorithm_rejected(self):
        # upcast is registered but centralized: the registry's congest
        # spec declares kmachine_convertible=False, so conversion refuses.
        graph = self._graph(n=24)
        with pytest.raises(ValueError, match="not k-machine convertible"):
            run_converted_hc(graph, algorithm="upcast", k_machines=2)

    def test_busiest_link_is_consistent(self):
        graph = self._graph(n=48, seed=5)
        _, metrics = run_converted_hc(graph, algorithm="dra", k_machines=3, seed=5)
        a, b, words = metrics.busiest_link()
        assert words == int(metrics.link_words.max())
        assert metrics.link_words[a, b] == words

    def test_speedup_and_summary_fields(self):
        graph = self._graph(n=48, seed=6)
        _, metrics = run_converted_hc(graph, algorithm="dra", k_machines=4, seed=6)
        s = metrics.summary()
        for key in ("k", "congest_rounds", "kmachine_rounds", "cross_words",
                    "local_words", "max_round_link_words", "link_imbalance",
                    "speedup"):
            assert key in s
        assert s["k"] == 4.0
        assert metrics.speedup() == pytest.approx(
            metrics.congest_rounds / metrics.kmachine_rounds)


# ---------------------------------------------------------------------------
# The Conversion-Theorem bound
# ---------------------------------------------------------------------------


class TestConversionBound:
    def test_bound_decreases_in_k(self):
        values = [conversion_round_bound(10_000, 200, 30, k=k) for k in (2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)

    def test_bound_terms(self):
        # M/k^2 term + T*Delta/k term, divided by link words.
        got = conversion_round_bound(1000, 10, 5, k=10, link_words=1)
        assert got == pytest.approx(1000 / 100 + 10 * 5 / 10)

    def test_bound_rejects_bad_k(self):
        with pytest.raises(ValueError):
            conversion_round_bound(10, 10, 10, k=0)

    def test_measured_rounds_within_bound_regime(self):
        # The measured conversion should not exceed the theorem shape by
        # more than a constant factor (we allow a generous 20x: the
        # bound ignores per-round indivisibility).
        graph = gnp_random_graph(48, paper_probability(48, 0.5, 6.0), seed=3)
        result, metrics = run_converted_hc(graph, algorithm="dra", k_machines=4, seed=3)
        assert result.success
        delta_max = max(graph.degree(v) for v in range(graph.n))
        bound = conversion_round_bound(
            result.messages, result.rounds, delta_max, k=4)
        assert metrics.kmachine_rounds <= 20 * bound + 10 * result.rounds
