"""Tests for the coupon-collector model of Theorem 2 (repro.analysis.coupon)."""

import math

import numpy as np
import pytest

from repro.analysis.coupon import (
    closure_failure_bound,
    coupon_failure_bound,
    expected_coupon_steps,
    simulate_relaxed_walk,
    theorem2_budget,
)


class TestClosedForms:
    def test_expected_steps_is_n_harmonic(self):
        assert expected_coupon_steps(1) == pytest.approx(1.0)
        assert expected_coupon_steps(2) == pytest.approx(2 * 1.5)
        assert expected_coupon_steps(100) == pytest.approx(
            100 * sum(1 / i for i in range(1, 101)))

    def test_expected_steps_close_to_n_ln_n(self):
        n = 5000
        assert expected_coupon_steps(n) == pytest.approx(
            n * math.log(n), rel=0.15)

    def test_paper_4nlnn_bound(self):
        # The proof: after 4 n ln n steps the union bound on missing a
        # coupon is n * n^-4 = n^-3.
        n = 500
        bound = coupon_failure_bound(n, 4 * n * math.log(n))
        assert bound == pytest.approx(n**-3.0, rel=0.01)

    def test_paper_3nlnn_closure_bound(self):
        n = 500
        bound = closure_failure_bound(n, 3 * n * math.log(n))
        assert bound == pytest.approx(n**-3.0, rel=0.01)

    def test_bounds_clamped_to_probability(self):
        assert coupon_failure_bound(100, 0.0) == 1.0
        assert closure_failure_bound(100, 0.0) == 1.0
        assert coupon_failure_bound(1, 10) == 0.0

    def test_theorem2_budget_matches_7nlnn_at_alpha3(self):
        n = 1000
        assert theorem2_budget(n, alpha=3.0) == pytest.approx(
            7 * n * math.log(n))

    def test_budget_grows_with_alpha(self):
        assert theorem2_budget(100, alpha=5) > theorem2_budget(100, alpha=2)


class TestSimulation:
    def test_simulation_usually_closes_within_budget(self):
        n = 200
        wins = sum(
            simulate_relaxed_walk(n, rng=seed)[0] for seed in range(30))
        # Failure prob is O(n^-3); 30/30 expected.
        assert wins == 30

    def test_steps_concentrate_near_expectation(self):
        n = 300
        rng = np.random.default_rng(7)
        samples = [simulate_relaxed_walk(n, rng=rng)[1] for _ in range(25)]
        mean = float(np.mean(samples))
        # Collection ~ n H_n plus geometric closure ~ n.
        predicted = expected_coupon_steps(n) + n
        assert 0.5 * predicted < mean < 2.0 * predicted

    def test_tiny_instance_fails(self):
        closed, steps = simulate_relaxed_walk(2)
        assert not closed
        assert steps == 0

    def test_tight_cap_can_fail(self):
        closed, steps = simulate_relaxed_walk(500, rng=0, step_cap=100)
        assert not closed
        assert steps == 100

    def test_deterministic_per_seed(self):
        a = simulate_relaxed_walk(150, rng=9)
        b = simulate_relaxed_walk(150, rng=9)
        assert a == b

    def test_measured_failure_rate_below_paper_bound(self):
        # At the Theorem 2 budget the failure probability bound is
        # coupon + closure = 2 n^-3; with 60 trials at n = 128 we must
        # see zero failures (expected failures ~ 3e-5).
        n = 128
        cap = int(theorem2_budget(n))
        failures = sum(
            not simulate_relaxed_walk(n, rng=seed, step_cap=cap)[0]
            for seed in range(60))
        assert failures == 0
