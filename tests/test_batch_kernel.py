"""Fused-kernel vs pure-numpy bitwise equality (``repro.engines._jit``).

The fused batch kernels (:func:`~repro.engines._jit.walk_steps_impl`,
:func:`~repro.engines._jit.tree_build_impl`,
:func:`~repro.engines._jit.reverse_blocks_impl`) promise results
*bitwise identical* to the numpy pass loop whether or not numba
compiles them.  These tests enforce that promise on every host by
installing the ``*_impl`` functions **uncompiled** as the dispatch
targets — the exact code numba would compile, minus the compilation —
and holding every RunResult field against the numpy path.  The
``*_parallel_impl`` threaded variants carry the same promise (prange
degrades to ``range`` uncompiled, so this also pins the parallel
bodies to their serial twins), and every equality check here runs
them as a third path.  The CI jit lanes (``REPRO_JIT=1`` with numba
installed; one with ``REPRO_JIT_THREADS=2``) re-run the whole suite
with the kernels actually compiled — serial and threaded — closing
the loop.
"""

import math

import numpy as np
import pytest

from repro.engines import _jit
from repro.engines.arraywalk import edge_twins
from repro.engines.batchwalk import (
    build_batch_tree,
    stack_graph_csrs,
    stacked_edge_twins,
)
from repro.engines.fast_batch import (
    _cre_fast_batch,
    _dhc2_fast_batch,
    _dra_fast_batch,
    _turau_fast_batch,
)
from repro.graphs import gnp_random_graph

BATCH_RUNNERS = {
    "dra": _dra_fast_batch,
    "cre": _cre_fast_batch,
    "dhc2": _dhc2_fast_batch,
    "turau": _turau_fast_batch,
}

FIELDS = ("success", "cycle", "steps", "rounds", "detail")


def sample(n, factor, seed):
    return gnp_random_graph(n, min(1.0, factor * math.log(n) / n), seed=seed)


def mixed_batch(n, trials, *, factors=(1.0, 8.0, 14.0), base_seed=300):
    graphs = [sample(n, factors[i % len(factors)], base_seed + i)
              for i in range(trials)]
    return graphs, [50 + i for i in range(trials)]


@pytest.fixture
def fused(monkeypatch):
    """Install the uncompiled impls as the live kernel dispatch targets."""
    monkeypatch.setattr(_jit, "walk_kernel", _jit.walk_steps_impl)
    monkeypatch.setattr(_jit, "tree_kernel", _jit.tree_build_impl)
    monkeypatch.setattr(_jit, "reverse_blocks", _jit.reverse_blocks_impl)


class TestFusedKernelEquality:
    """One fused trial-at-a-time loop == interleaved numpy passes."""

    def assert_paths_identical(self, algorithm, graphs, seeds, monkeypatch,
                               **kwargs):
        runner = BATCH_RUNNERS[algorithm]
        with monkeypatch.context() as m:
            m.setattr(_jit, "walk_kernel", None)
            m.setattr(_jit, "tree_kernel", None)
            m.setattr(_jit, "reverse_blocks", None)
            plain = runner(graphs, seeds=seeds, **kwargs)
        with monkeypatch.context() as m:
            m.setattr(_jit, "walk_kernel", _jit.walk_steps_impl)
            m.setattr(_jit, "tree_kernel", _jit.tree_build_impl)
            m.setattr(_jit, "reverse_blocks", _jit.reverse_blocks_impl)
            fused = runner(graphs, seeds=seeds, **kwargs)
        with monkeypatch.context() as m:
            # The threaded variants, uncompiled (prange == range here):
            # pins the parallel loop bodies to the serial results too.
            m.setattr(_jit, "walk_kernel", _jit.walk_steps_parallel_impl)
            m.setattr(_jit, "tree_kernel", _jit.tree_build_parallel_impl)
            m.setattr(_jit, "reverse_blocks",
                      _jit.reverse_blocks_parallel_impl)
            threaded = runner(graphs, seeds=seeds, **kwargs)
        assert len(fused) == len(plain) == len(threaded) == len(graphs)
        outcomes = set()
        for i, (a, b, c) in enumerate(zip(fused, plain, threaded)):
            outcomes.add(b.success)
            for field in FIELDS:
                assert getattr(a, field) == getattr(b, field), (
                    f"{algorithm}: trial {i} field {field}")
                assert getattr(c, field) == getattr(b, field), (
                    f"{algorithm} (parallel impl): trial {i} field {field}")
        return outcomes

    @pytest.mark.parametrize("algorithm", sorted(BATCH_RUNNERS))
    @pytest.mark.parametrize("n", [16, 96])
    def test_mixed_outcomes(self, algorithm, n, monkeypatch):
        graphs, seeds = mixed_batch(n, 9)
        outcomes = self.assert_paths_identical(
            algorithm, graphs, seeds, monkeypatch)
        if n == 96 and algorithm in ("dra", "cre"):
            # The density mix must exercise success and failure alike.
            assert outcomes == {True, False}

    @pytest.mark.parametrize("algorithm", sorted(BATCH_RUNNERS))
    def test_single_trial(self, algorithm, monkeypatch):
        graphs, seeds = mixed_batch(64, 1, factors=(8.0,))
        self.assert_paths_identical(algorithm, graphs, seeds, monkeypatch)

    def test_budget_failures(self, monkeypatch):
        # FAIL_BUDGET exits mid-walk: end_round / flood bookkeeping
        # must match where the numpy pass loop stops.
        graphs, seeds = mixed_batch(64, 4, factors=(8.0,))
        self.assert_paths_identical("dra", graphs, seeds, monkeypatch,
                                    step_budget=7)

    def test_dhc2_partition_walks(self, monkeypatch):
        # Explicit k forces empty / disconnected colour classes, so the
        # fused walk runs with per-trial sizes below the block size.
        graphs = [sample(12, 3.0, 900 + i) for i in range(6)]
        self.assert_paths_identical("dhc2", graphs, list(range(6)),
                                    monkeypatch, k=5)


class TestFusedTreeKernel:
    @pytest.mark.parametrize("impl_name",
                             ["tree_build_impl", "tree_build_parallel_impl"])
    def test_tree_matches_numpy(self, impl_name, monkeypatch):
        graphs = [sample(32, 8.0, 20 + i) for i in range(5)]
        indptr, indices = stack_graph_csrs(graphs)
        roots = np.arange(5, dtype=np.int64) * 32
        with monkeypatch.context() as m:
            m.setattr(_jit, "tree_kernel", None)
            plain = build_batch_tree(indptr, indices, 5, 32, roots)
        with monkeypatch.context() as m:
            m.setattr(_jit, "tree_kernel", getattr(_jit, impl_name))
            fused = build_batch_tree(indptr, indices, 5, 32, roots)
        np.testing.assert_array_equal(fused.depth, plain.depth)
        np.testing.assert_array_equal(fused.parent, plain.parent)
        np.testing.assert_array_equal(fused.ok, plain.ok)
        np.testing.assert_array_equal(fused.tree_depth, plain.tree_depth)


class TestParallelImpls:
    def test_reverse_blocks_parallel_matches_serial(self):
        rng = np.random.default_rng(7)
        batch, size = 6, 17
        rows = np.array([0, 2, 3, 5], dtype=np.int64)
        los = np.array([1, 0, 4, 2], dtype=np.int64)
        highs = np.array([9, 17, 11, 15], dtype=np.int64)
        # Each trial block holds a permutation of its own global node
        # ids, exactly the layout the walk kernels keep ``path_flat``
        # in — so the per-trial pos writes land in disjoint slots.
        flat_a = np.concatenate(
            [rng.permutation(size) + b * size for b in range(batch)])
        flat_b = flat_a.copy()
        pos_a = np.empty(batch * size, dtype=np.int64)
        pos_a[flat_a] = np.tile(np.arange(size, dtype=np.int64), batch)
        pos_b = pos_a.copy()
        original = flat_a.copy()
        _jit.reverse_blocks_impl(flat_a, pos_a, rows, los, highs, size)
        _jit.reverse_blocks_parallel_impl(flat_b, pos_b, rows, los, highs,
                                          size)
        assert not np.array_equal(flat_a, original)  # something reversed
        np.testing.assert_array_equal(flat_a, flat_b)
        np.testing.assert_array_equal(pos_a, pos_b)

    def test_parallel_bodies_stay_in_sync(self):
        # The parallel variants are textual copies of the serial impls
        # with the outer loop swapped (and the tree queue made
        # loop-local).  Guard the docstring promise cheaply: identical
        # argument lists.
        import inspect

        for serial, parallel in [
            (_jit.walk_steps_impl, _jit.walk_steps_parallel_impl),
            (_jit.tree_build_impl, _jit.tree_build_parallel_impl),
            (_jit.reverse_blocks_impl, _jit.reverse_blocks_parallel_impl),
        ]:
            assert (inspect.signature(serial)
                    == inspect.signature(parallel))


class TestStackedEdgeTwins:
    def test_per_block_twins_match_serial(self):
        graphs = [sample(24, 6.0, 40 + i) for i in range(4)]
        indptr, indices = stack_graph_csrs(graphs)
        twins = stacked_edge_twins(indptr, indices, 4, 24)
        for b, g in enumerate(graphs):
            lo = int(indptr[b * 24])
            hi = int(indptr[(b + 1) * 24])
            want = edge_twins(g.indptr, g.indices)
            np.testing.assert_array_equal(twins[lo:hi] - lo, want)


class TestJitGating:
    def test_disabled_by_default(self):
        # Without REPRO_JIT (or without numba) nothing is compiled and
        # the dispatch attributes are None -> pure-numpy everywhere.
        if not _jit.ENABLED:
            assert _jit.walk_kernel is None
            assert _jit.tree_kernel is None
            assert _jit.reverse_blocks is None

    def test_impls_are_plain_python(self):
        # The docstring contract: *_impl stay callable uncompiled.
        for fn in (_jit.walk_steps_impl, _jit.tree_build_impl,
                   _jit.reverse_blocks_impl):
            assert callable(fn) and fn.__module__ == "repro.engines._jit"

    def test_fused_not_used_without_exact_pool(self, fused, monkeypatch):
        # The kernel replays DrawPool's PCG64 state arrays directly, so
        # dispatch must stay numpy when the pool fell back to per-node
        # Generators (no state arrays to advance) — and the fallback
        # results must equal the fused ones.
        from repro.engines import batchwalk

        calls = []

        def counting_kernel(*args):
            calls.append(1)
            return _jit.walk_steps_impl(*args)

        monkeypatch.setattr(_jit, "walk_kernel", counting_kernel)
        graphs, seeds = mixed_batch(16, 2, factors=(8.0,))
        with monkeypatch.context() as m:
            m.setattr(batchwalk, "_EXACT", False)
            plain = _dra_fast_batch(graphs, seeds=seeds)
        assert calls == []  # kernel installed but never dispatched
        want = _dra_fast_batch(graphs, seeds=seeds)
        assert calls  # exact pool restored -> fused dispatch taken
        for a, b in zip(plain, want):
            for field in FIELDS:
                assert getattr(a, field) == getattr(b, field)
